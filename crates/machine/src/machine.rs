//! The engine loop: ties the coherence protocol, lease tables, simulated
//! memory, and lockstep workers together.
//!
//! ## Event routing
//!
//! Every simulated instruction becomes an `OpStart` event at the
//! worker's local issue time and an `OpComplete` event at its
//! protocol-determined completion time. Every event names the tile it
//! executes at ([`Ev::tile`]), and applying it touches only that tile's
//! slice of machine state — its pending-op slot, its lease table, its
//! partition's scratch buffers — mirroring the message-passing handler
//! discipline of `lr-coherence`. The one piece of genuinely global
//! machine state, the heap allocator, is reached by message too:
//! `Malloc`/`Free` are routed to a fixed *allocator home* tile
//! ([`ALLOC_HOME`]) and the result rides back as [`Ev::MemReply`].
//!
//! ## Commit modes
//!
//! [`CommitMode::Lockstep`] applies events strictly in global
//! `(time, key)` order, one at a time. [`CommitMode::Relaxed`] drives
//! the safe-window API of [`ShardedQueue`]: each partition commits its
//! whole window batch without per-event synchronization — concurrently
//! across host threads on live runs — and the tile-local discipline
//! above guarantees the simulated results are byte-identical anyway.
//! The shard A/B tests and the CI lockstep-vs-relaxed gate hold us to
//! that, byte for byte.

use crate::ctx::{RecordSink, Recorder, ThreadCtx};
use crate::proto::{Op, Reply, Request, ALLOC_COST};
use crate::rendezvous::{slot, SlotReceiver, SlotSender};
use lr_coherence::{AccessKind, CohContext, CohEvent, CoherenceEngine, ProbeAction};
use lr_lease::{ArmedCounter, BeginLease, LeaseTable, MultiLeaseBegin};
use lr_sim_core::trace::{TraceEvent, TraceRing, TraceSink};
use lr_sim_core::tracefmt::{self, MachineTrace, OpRecord};
use lr_sim_core::{
    CoreId, Cycle, EventQueueKind, LineAddr, MachineStats, ShardedQueue, SystemConfig,
};
use lr_sim_mem::SimMemory;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static SHARDS_FROM_ENV: OnceLock<usize> = OnceLock::new();

fn parse_shards_env() -> usize {
    match std::env::var("LR_ENGINE_SHARDS") {
        Err(_) => 1,
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("LR_ENGINE_SHARDS={v:?} is not a positive shard count"),
        },
    }
}

/// The process-wide default engine-partition count, from
/// `LR_ENGINE_SHARDS` (default 1 = the classic single event loop).
/// Parsed once; a bad value aborts rather than silently running the
/// wrong engine. Each machine clamps the count to its simulated core
/// count — partitions are slices of tiles, so there can never be more
/// partitions than tiles.
///
/// The value is cached process-wide on first read: setting
/// `LR_ENGINE_SHARDS` from *inside* the process afterwards (e.g.
/// `std::env::set_var` in a test) can never take effect. Debug builds
/// assert the environment still matches the cache on every read so such
/// a stale configuration fails loudly instead of silently running the
/// wrong partition count — tests that need a specific count should use
/// [`Machine::with_engine_shards`] instead of mutating the environment.
pub fn engine_shards_from_env() -> usize {
    let cached = *SHARDS_FROM_ENV.get_or_init(parse_shards_env);
    debug_assert_eq!(
        cached,
        parse_shards_env(),
        "LR_ENGINE_SHARDS changed after its first read was cached; \
         per-machine control belongs to Machine::with_engine_shards"
    );
    cached
}

/// How a partitioned engine commits each safe window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// One event at a time, in global `(time, key)` order (the turn
    /// protocol). Required by the globally-ordered structured trace
    /// ring on live runs; otherwise a debugging/A-B reference.
    Lockstep,
    /// Whole safe-window batches per partition, with no per-event
    /// synchronization (host-parallel on live runs). Simulated results
    /// are identical to lockstep by construction.
    Relaxed,
}

impl std::fmt::Display for CommitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitMode::Lockstep => f.write_str("lockstep"),
            CommitMode::Relaxed => f.write_str("relaxed"),
        }
    }
}

static COMMIT_FROM_ENV: OnceLock<CommitMode> = OnceLock::new();

fn parse_commit_env() -> CommitMode {
    match std::env::var("LR_ENGINE_COMMIT") {
        Err(_) => CommitMode::Relaxed,
        Ok(v) => match v.as_str() {
            "lockstep" => CommitMode::Lockstep,
            "relaxed" => CommitMode::Relaxed,
            _ => panic!("LR_ENGINE_COMMIT={v:?} is not \"lockstep\" or \"relaxed\""),
        },
    }
}

/// The process-wide default commit mode, from `LR_ENGINE_COMMIT`
/// (`lockstep` | `relaxed`; default relaxed — the modes only differ in
/// host execution shape, never in simulated results).
///
/// Cached process-wide on first read, like [`engine_shards_from_env`]:
/// debug builds assert the environment still matches the cache on every
/// subsequent read, so an in-process `set_var` misfires loudly. Tests
/// should pin the mode per machine via [`Machine::with_commit_mode`].
pub fn engine_commit_from_env() -> CommitMode {
    let cached = *COMMIT_FROM_ENV.get_or_init(parse_commit_env);
    debug_assert_eq!(
        cached,
        parse_commit_env(),
        "LR_ENGINE_COMMIT changed after its first read was cached; \
         per-machine control belongs to Machine::with_commit_mode"
    );
    cached
}

/// The tile that owns the simulated heap allocator. `Malloc`/`Free`
/// mutate one global free list, so they execute as messages delivered
/// here — the only machine-layer state reached by routing rather than
/// by the issuing event's own tile.
const ALLOC_HOME: usize = 0;

/// A workload thread: a closure over the simulated-instruction API.
pub type ThreadFn = Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>;

/// A single-threaded supplier of requests for engine-only replay.
///
/// `next(tid)` is called exactly where the live machine would block on
/// core `tid`'s rendezvous slot; `observe(tid, reply)` is called with the
/// reply the live worker would have received, immediately before the next
/// `next(tid)`. Returning `Err` from either aborts the run with a
/// structured failure report — this is how `lr-replay` surfaces
/// divergence between a recorded trace and the engine's behaviour.
///
/// Calls for different `tid`s arrive in executor-dependent order (the
/// relaxed executor drains per-partition window batches, not global time
/// order), but each core's own `next`/`observe` alternation is always in
/// that core's program order — sources must key their state by `tid`,
/// never by global call order.
///
/// `Send` because the engine core that drives a source is shared with
/// the partitioned executor's host threads (sources themselves are only
/// ever *called* from one thread at a time — engine-only runs are
/// driven from a single host thread in every commit mode).
pub trait OpSource: Send {
    /// The next request core `tid` issues (or its `Op::Exit`).
    fn next(&mut self, tid: usize) -> Result<Request, String>;
    /// The engine's reply to core `tid`'s in-flight request.
    fn observe(&mut self, tid: usize, reply: Reply) -> Result<(), String>;
}

/// Why a [`Machine::run_source`] run stopped early.
#[derive(Debug)]
pub struct SourceAbort {
    /// One-line failure reason (divergence detail, deadlock, watchdog…).
    pub reason: String,
    /// Full rendered failure report: reason, protocol-trace window,
    /// in-flight protocol state, lease tables, pending ops.
    pub report: String,
}

/// Result of [`Machine::run_recorded`]: the usual run outputs plus the
/// captured trace, ready for [`tracefmt::encode`].
pub struct RecordedRun {
    pub stats: MachineStats,
    pub mem: SimMemory,
    /// Discrete events the engine processed.
    pub events: u64,
    pub trace: MachineTrace,
}

/// How `run_inner` is driven: live OS-thread workers (optionally
/// recording) or an engine-only [`OpSource`].
enum Mode<'a> {
    Live {
        programs: Vec<ThreadFn>,
        record: bool,
    },
    Source {
        threads: usize,
        source: &'a mut dyn OpSource,
    },
}

/// Where requests come from and replies go to: the live rendezvous slots
/// or an [`OpSource`] feeding recorded ops from the engine's own thread.
enum Transport<'a> {
    Live {
        req_rx: Vec<SlotReceiver<Request>>,
        reply_tx: Vec<SlotSender<Reply>>,
    },
    Source(&'a mut dyn OpSource),
}

impl Transport<'_> {
    fn recv(&mut self, tid: usize) -> Result<Request, String> {
        match self {
            Transport::Live { req_rx, .. } => req_rx[tid]
                .recv()
                .map_err(|_| format!("core {tid}: worker hung up without sending Exit")),
            Transport::Source(src) => src.next(tid),
        }
    }

    fn reply(&mut self, tid: usize, r: Reply) -> Result<(), String> {
        match self {
            Transport::Live { reply_tx, .. } => reply_tx[tid]
                .send(r)
                .map_err(|_| format!("core {tid}: worker hung up before receiving its reply")),
            Transport::Source(src) => src.observe(tid, r),
        }
    }
}

/// Where a live run dumps its captured trace: a directory plus a
/// caller-chosen label naming the run (e.g. `fig3_counter.lr.t8` for one
/// sweep cell). The label keeps filenames meaningful and collision-free
/// across concurrent sweep workers writing into one directory.
#[derive(Debug, Clone)]
pub struct TraceOutput {
    pub dir: PathBuf,
    pub label: String,
}

/// Keep labels filesystem-safe: anything outside `[A-Za-z0-9._-]`
/// becomes `-`, and an empty label falls back to `trace`.
fn sanitize_label(label: &str) -> String {
    let s: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if s.is_empty() {
        "trace".to_string()
    } else {
        s
    }
}

/// Create the first free `{label}_{fingerprint}[-k].lrt` name in `dir`,
/// atomically (`create_new`): two runs racing on the same label each get
/// their own file, never a silent overwrite.
fn create_trace_file(
    dir: &Path,
    label: &str,
    trace: &MachineTrace,
) -> std::io::Result<(std::fs::File, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let stem = format!(
        "{}_{:016x}",
        sanitize_label(label),
        tracefmt::config_fingerprint(&trace.config)
    );
    for k in 1u64.. {
        let name = if k == 1 {
            format!("{stem}.{}", tracefmt::TRACE_EXT)
        } else {
            format!("{stem}-{k}.{}", tracefmt::TRACE_EXT)
        };
        let path = dir.join(name);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(f) => return Ok((f, path)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    unreachable!("u64 sequence space exhausted")
}

/// Best-effort trace write for [`Machine::with_trace_output`]: IO failure
/// warns on stderr rather than failing an otherwise-successful simulation.
fn write_trace_file(out: &TraceOutput, trace: &MachineTrace) {
    use std::io::Write;
    let bytes = tracefmt::encode(trace);
    let res = create_trace_file(&out.dir, &out.label, trace)
        .and_then(|(mut f, path)| f.write_all(&bytes).map(|()| path));
    if let Err(e) = res {
        eprintln!(
            "lr-machine: cannot write trace {:?} into {}: {e}",
            out.label,
            out.dir.display()
        );
    }
}

/// Yield-phase budget pool for worker reply receivers, divided by the
/// worker count: the more workers are waiting, the longer each host
/// scheduling rotation, so the quicker each should fall back to parking
/// (see the comment at the `slot()` construction site in
/// [`Machine::run_with_memory`]).
const WORKER_YIELD_CAP: u32 = 16;

/// Host-level observability for one run: how the execution engine (not
/// the simulated machine) behaved. Kept out of [`MachineStats`] so the
/// published simulated metrics stay exactly the paper's — and so the
/// simulated results provably cannot depend on the executor shape.
#[derive(Debug, Clone, Copy)]
pub struct EngineInfo {
    /// Discrete events the engine processed.
    pub events: u64,
    /// Partition count the run actually used (after clamping).
    pub shards: usize,
    /// Events delivered across a partition boundary (mailbox traffic).
    pub cross_events: u64,
    /// Events whose timestamp preceded every other partition's safe
    /// horizon (head + lookahead): the events a conservative PDES
    /// executor may commit concurrently without risking causality.
    /// Maintained on the `pop_global` (lockstep) path.
    pub concurrent_events: u64,
    /// Safe-time epochs the partitioned clocks advanced through
    /// (`pop_global` path).
    pub epochs: u64,
    /// Conservative lookahead (cycles) stamped on cross-partition sends.
    pub lookahead: Cycle,
    /// Non-empty per-partition window batches the relaxed executor
    /// committed (0 under lockstep driving).
    pub commit_batches: u64,
    /// Largest single per-partition window batch committed.
    pub max_batch: u64,
    /// Heap ops (`Malloc`/`Free`) routed as messages to the allocator
    /// home tile — each one a NoC round trip charged to the issuing
    /// thread. Steady-state scenarios built on pre-allocated pools
    /// (the delegation locks) assert this stays 0, so the home-tile
    /// hotspot can never distort a lock comparison.
    pub alloc_msgs: u64,
}

/// Executor observability counters, read off the event store after a
/// run. The engine always uses [`ShardedQueue`] (shards = 1 is a single
/// partition — the classic engine with a mailbox layer that never
/// fires), so every run reports the same counter set.
fn queue_info(q: &ShardedQueue<Ev>) -> EngineInfo {
    EngineInfo {
        events: q.processed(),
        shards: q.map().partitions(),
        cross_events: q.cross_events(),
        concurrent_events: q.concurrent_events(),
        epochs: q.epochs(),
        lookahead: q.lookahead(),
        commit_batches: q.commit_batches(),
        max_batch: q.max_batch(),
        // Counted per partition while applying `Ev::MemReq`; summed in
        // by the run loop, which owns the partition contexts.
        alloc_msgs: 0,
    }
}

/// Engine events. Every variant executes at exactly one tile
/// ([`Ev::tile`]), and applying it touches only state owned by that
/// tile — the property that makes relaxed window commit sound.
#[derive(Debug)]
enum Ev {
    /// Wait for the worker's first request.
    Start(usize),
    /// A worker's instruction reaches its issue time.
    OpStart(usize),
    /// A worker's instruction completes (data moves now).
    OpComplete(usize),
    /// Coherence-protocol event, delivered at the named tile.
    Coh(u16, CohEvent),
    /// A lease counter reached zero (Algorithm 1 `ZERO-COUNTER`).
    Expiry {
        core: CoreId,
        line: LineAddr,
        generation: u64,
    },
    /// A heap request reached the allocator home tile.
    MemReq { tid: usize, op: Op },
    /// The allocator's reply reached the requesting core.
    MemReply { tid: usize, value: u64 },
}

impl Ev {
    /// The tile this event executes at (selects the owning partition).
    fn tile(&self) -> usize {
        match self {
            Ev::Start(tid) | Ev::OpStart(tid) | Ev::OpComplete(tid) => *tid,
            Ev::Coh(dest, _) => *dest as usize,
            Ev::Expiry { core, .. } => core.idx(),
            Ev::MemReq { .. } => ALLOC_HOME,
            Ev::MemReply { tid, .. } => *tid,
        }
    }
}

/// Per-core lease statistics collected by the machine layer.
#[derive(Debug, Default, Clone)]
struct LeaseCounters {
    taken: u64,
    voluntary: u64,
    involuntary: u64,
    overflow: u64,
    broken: u64,
    multileases: u64,
}

/// In-flight instruction state per worker.
#[derive(Debug)]
enum Pending {
    /// Received from the worker, waiting for its issue time.
    Incoming(Op),
    /// A data access in the protocol; data moves at completion.
    Data { op: Op, issued: Cycle },
    /// A single-lease acquisition in the protocol.
    LeaseAcq { issued: Cycle },
    /// A MultiLease group acquisition: lines acquired one at a time in
    /// global order (Algorithm 2).
    Multi {
        lines: Vec<LineAddr>,
        idx: usize,
        issued: Cycle,
    },
    /// A heap request in flight to/from the allocator home tile.
    Alloc { issued: Cycle },
    /// Immediate completion with a precomputed result.
    Imm {
        value: u64,
        flag: bool,
        issued: Cycle,
    },
}

/// Reusable machine-loop buffers, one set per partition.
/// Deferred-effect staging ping-pongs between here and [`PartCtx`] (see
/// [`EngineCore::drain`]) so the steady-state loop performs no per-event
/// heap allocation.
#[derive(Default)]
struct Scratch {
    pins: Vec<(CoreId, LineAddr)>,
    rels: Vec<(CoreId, LineAddr)>,
    completions: Vec<(u64, Cycle)>,
    /// Release/expiry result lines for the machine-loop paths.
    lines: Vec<LineAddr>,
}

/// Machine state shared across partitions. Every access is keyed by the
/// executing event's tile — queue pushes by source partition, lease
/// tables and counters by core — so concurrent window commits touch
/// disjoint slices. The structured trace ring is the exception: it is
/// one globally-ordered window, so live runs with tracing on commit in
/// lockstep (see `run_inner`).
struct Shared {
    queue: ShardedQueue<Ev>,
    tables: Vec<LeaseTable>,
    lc: Vec<LeaseCounters>,
    prioritization: bool,
    /// Structured trace window (depth 0 = off) fed by both the engine
    /// (through the [`CohContext`] hooks) and the machine loop itself.
    trace: TraceRing,
}

/// Per-partition engine-call context: the base time/tile of the event
/// being applied (every `schedule` is relative to them, and the tile
/// both stamps the canonical push key and names the source partition)
/// plus the deferred-effect and reuse buffers that used to be global —
/// one set per partition so relaxed window commits never share them.
#[derive(Default)]
struct PartCtx {
    /// Base time of the engine call in progress (schedule() is relative).
    base: Cycle,
    /// Tile of the event being applied (push source / canonical key).
    tile: usize,
    /// Deferred effects, drained after every engine call.
    completions: Vec<(u64, Cycle)>,
    to_pin: Vec<(CoreId, LineAddr)>,
    deferred_release: Vec<(CoreId, LineAddr)>,
    /// Reusable buffer for lease-release results inside the `CohContext`
    /// hooks (the hook signatures are fixed, so the scratch lives here).
    released_scratch: Vec<LineAddr>,
    /// Reusable sorted copy of the engine's pinned-ways set for
    /// [`CohContext::pinned_victim`] membership tests.
    pinned_scratch: Vec<LineAddr>,
    /// Reusable buffer for counters armed by an exclusive grant.
    armed_scratch: Vec<ArmedCounter>,
    /// Events this partition applied — its share of the watchdog event
    /// budget (the exact global count is only read at executor
    /// synchronization points).
    applied: u64,
    /// `Ev::MemReq` events (heap ops routed to the allocator home tile)
    /// this partition applied; summed into [`EngineInfo::alloc_msgs`].
    alloc_msgs: u64,
}

/// The [`CohContext`] the engine sees: the tile-sliced shared state plus
/// the executing partition's context, borrowed disjointly from
/// [`EngineCore`] for the duration of one engine call.
struct Ctx<'a> {
    shared: &'a mut Shared,
    ps: &'a mut PartCtx,
}

impl CohContext for Ctx<'_> {
    fn schedule(&mut self, delay: Cycle, dest: CoreId, ev: CohEvent) {
        self.shared.queue.push(
            self.ps.tile,
            self.ps.base,
            dest.idx(),
            self.ps.base + delay,
            Ev::Coh(dest.0, ev),
        );
    }

    fn tracing(&self) -> bool {
        self.shared.trace.enabled()
    }

    fn trace(&mut self, now: Cycle, ev: TraceEvent) {
        self.shared.trace.record(now, ev);
    }

    fn xact_completed(&mut self, token: u64, now: Cycle) {
        self.ps.completions.push((token, now));
    }

    fn probe_action(
        &mut self,
        owner: CoreId,
        line: LineAddr,
        regular: bool,
        now: Cycle,
    ) -> ProbeAction {
        match self.shared.tables[owner.idx()].state(line, now) {
            lr_lease::LeaseState::NotLeased => ProbeAction::Proceed,
            // The entry exists but ownership has not been (re-)acquired
            // under it: the line is merely stale-owned, so the probe may
            // take it (the group's own request will fetch it back later,
            // in sorted order — this is what keeps MultiLease
            // deadlock-free, Proposition 3).
            lr_lease::LeaseState::Pending => ProbeAction::Proceed,
            lr_lease::LeaseState::Active => {
                if regular && self.shared.prioritization {
                    // §5 prioritization: a regular request breaks the lease.
                    let found = self.shared.tables[owner.idx()]
                        .release_into(line, &mut self.ps.released_scratch);
                    assert!(found, "Active lease vanished under release");
                    self.shared.lc[owner.idx()].broken += self.ps.released_scratch.len() as u64;
                    for &l in &self.ps.released_scratch {
                        if l != line {
                            self.ps.deferred_release.push((owner, l));
                        }
                    }
                    ProbeAction::ProceedBreakingLease
                } else {
                    ProbeAction::Queue
                }
            }
            // Expired but the expiry event has not fired yet (tie at the
            // same cycle): finish the involuntary release in place.
            lr_lease::LeaseState::Expired => {
                let found = self.shared.tables[owner.idx()]
                    .release_into(line, &mut self.ps.released_scratch);
                assert!(found, "Expired lease vanished under release");
                self.shared.lc[owner.idx()].involuntary += self.ps.released_scratch.len() as u64;
                for &l in &self.ps.released_scratch {
                    if l != line {
                        self.ps.deferred_release.push((owner, l));
                    }
                }
                ProbeAction::ProceedBreakingLease
            }
        }
    }

    fn exclusive_granted(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        self.shared.tables[core.idx()].on_exclusive_granted_into(
            line,
            now,
            &mut self.ps.armed_scratch,
        );
        if self.shared.tables[core.idx()].is_leased(line, now) {
            self.ps.to_pin.push((core, line));
        }
        for a in &self.ps.armed_scratch {
            // Expiries fire at the leasing core's own tile. Grants are
            // delivered at that same tile, so this is a same-tile push.
            self.shared.queue.push(
                self.ps.tile,
                self.ps.base,
                core.idx(),
                a.expires,
                Ev::Expiry {
                    core,
                    line: a.line,
                    generation: a.generation,
                },
            );
        }
    }

    fn pinned_victim(
        &mut self,
        core: CoreId,
        pinned: &[LineAddr],
        _now: Cycle,
    ) -> Option<LineAddr> {
        // Oldest lease first (FIFO), matching Algorithm 1's replacement.
        // Membership is a binary search against a sorted copy of the
        // pinned set (O(leases·log pinned)) instead of a linear
        // `contains` per lease line.
        self.ps.pinned_scratch.clear();
        self.ps.pinned_scratch.extend_from_slice(pinned);
        self.ps.pinned_scratch.sort_unstable();
        if let Some(l) = self.shared.tables[core.idx()].oldest_member(&self.ps.pinned_scratch) {
            self.shared.lc[core.idx()].overflow += 1;
            if self.shared.tables[core.idx()].release_into(l, &mut self.ps.released_scratch) {
                for &m in &self.ps.released_scratch {
                    if m != l {
                        self.ps.deferred_release.push((core, m));
                    }
                }
            }
            return Some(l);
        }
        // Stale pin (lease already gone): let the engine unpin it.
        pinned.first().copied()
    }

    fn line_invalidated(&mut self, core: CoreId, line: LineAddr, _now: Cycle) {
        if self.shared.tables[core.idx()].release_into(line, &mut self.ps.released_scratch) {
            self.shared.lc[core.idx()].involuntary += self.ps.released_scratch.len() as u64;
            for &m in &self.ps.released_scratch {
                if m != line {
                    self.ps.deferred_release.push((core, m));
                }
            }
        }
    }
}

/// The simulated machine: configure, set up shared simulated memory, then
/// run a set of workload threads to completion.
///
/// ```
/// use lr_machine::{Machine, SystemConfig, ThreadCtx, ThreadFn};
///
/// let mut machine = Machine::new(SystemConfig::with_cores(2));
/// let cell = machine.setup(|mem| mem.alloc_line_aligned(8));
/// let progs: Vec<ThreadFn> = (0..2)
///     .map(|_| {
///         Box::new(move |ctx: &mut ThreadCtx| {
///             // Lease the line for the read–CAS window (paper Fig. 1).
///             loop {
///                 ctx.lease_max(cell);
///                 let v = ctx.read(cell);
///                 let ok = ctx.cas(cell, v, v + 1);
///                 ctx.release(cell);
///                 if ok { break; }
///             }
///             ctx.count_op();
///         }) as ThreadFn
///     })
///     .collect();
/// let (stats, mem) = machine.run_with_memory(progs);
/// assert_eq!(mem.read_word(cell), 2);
/// assert_eq!(stats.app_ops, 2);
/// assert_eq!(stats.core_totals().cas_failures, 0);
/// ```
pub struct Machine {
    cfg: SystemConfig,
    mem: SimMemory,
    trace_depth: usize,
    /// Explicit event-queue store override; `None` follows the
    /// process-wide `LR_EVENTQ` default.
    eventq: Option<EventQueueKind>,
    /// Explicit engine-partition override; `None` follows the
    /// process-wide `LR_ENGINE_SHARDS` default.
    engine_shards: Option<usize>,
    /// Explicit commit-mode override; `None` follows the process-wide
    /// `LR_ENGINE_COMMIT` default.
    commit: Option<CommitMode>,
    /// When set, a live run records itself and writes the trace here.
    trace_out: Option<TraceOutput>,
    /// Skip the distance-aware per-partition-pair lookahead matrix and
    /// run the uniform scalar window (the pre-refinement behaviour).
    uniform_lookahead: bool,
}

// The `lr-bench` sweep driver constructs and runs one `Machine` per
// grid cell from parallel host worker threads. Machines (and the
// workload closures they accept) must therefore stay Send; this fails
// compilation if a non-Send field (Rc, raw-pointer cache, ...) is ever
// introduced.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<ThreadFn>();
};

impl Machine {
    /// A machine with the given configuration and an empty heap.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(cfg.num_cores >= 1 && cfg.num_cores <= lr_coherence::CoreSet::CAPACITY);
        Machine {
            cfg,
            mem: SimMemory::new(),
            trace_depth: 0,
            eventq: None,
            engine_shards: None,
            commit: None,
            trace_out: None,
            uniform_lookahead: false,
        }
    }

    /// Pin this machine to a specific event-queue store, bypassing the
    /// `LR_EVENTQ` process default. Simulated results are required to be
    /// byte-identical across stores; this exists for the tests that
    /// prove it (heap/wheel A/B) — production callers keep the default.
    pub fn with_event_queue(mut self, kind: EventQueueKind) -> Self {
        self.eventq = Some(kind);
        self
    }

    /// Partition the engine into `n` conservatively-synchronized PDES
    /// partitions (tile slices), bypassing the `LR_ENGINE_SHARDS`
    /// process default. `n` is clamped to `[1, num_cores]`; 1 is the
    /// classic single event loop. Simulated results are required to be
    /// byte-identical for every shard count — the shard A/B tests and
    /// the CI gate prove it; production callers keep the default.
    pub fn with_engine_shards(mut self, n: usize) -> Self {
        self.engine_shards = Some(n.max(1));
        self
    }

    /// Fall back to the uniform scalar lookahead instead of the
    /// distance-aware per-partition-pair matrix. Simulated results are
    /// byte-identical either way (the matrix only widens safe windows,
    /// it never reorders commits); this exists for the occupancy A/B
    /// in the `pdes_scaling` benchmark scenario.
    pub fn with_uniform_lookahead(mut self) -> Self {
        self.uniform_lookahead = true;
        self
    }

    /// Pin this machine to a commit mode, bypassing the
    /// `LR_ENGINE_COMMIT` process default. Simulated results are
    /// required to be byte-identical across modes — the commit A/B
    /// tests and the CI lockstep-vs-relaxed gate prove it.
    pub fn with_commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit = Some(mode);
        self
    }

    /// Keep a ring of the last `depth` structured protocol/machine trace
    /// events ([`lr_sim_core::TraceEvent`]) and include the window in the
    /// failure report emitted on watchdog trips, deadlocks, or invariant
    /// violations (0 = off, the default). Events are plain `Copy` records;
    /// nothing is formatted unless a report is actually printed.
    ///
    /// The ring is one globally-ordered window, so live runs with
    /// `depth > 0` commit in lockstep regardless of the commit mode.
    pub fn with_trace(mut self, depth: usize) -> Self {
        self.trace_depth = depth;
        self
    }

    /// Record this machine's live run and write the captured trace into
    /// `dir` as `{label}_{config-fingerprint}.lrt` (a `-2`, `-3`, …
    /// suffix is appended if the name is taken — creation is atomic, so
    /// concurrent runs sharing a directory never overwrite each other).
    /// The explicit (dir, label) pair replaces the old process-global
    /// `LR_TRACE_DIR` env probe: drivers thread their record directory
    /// through here, and any env knob is resolved once at the entry
    /// point, never per-`Machine`.
    pub fn with_trace_output(mut self, dir: impl Into<PathBuf>, label: impl Into<String>) -> Self {
        self.trace_out = Some(TraceOutput {
            dir: dir.into(),
            label: label.into(),
        });
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Pre-run setup: allocate and initialize shared structures directly
    /// in simulated memory (charges no simulated time).
    pub fn setup<R>(&mut self, f: impl FnOnce(&mut SimMemory) -> R) -> R {
        f(&mut self.mem)
    }

    /// Run `programs` (one per core, at most `num_cores`) to completion
    /// and return the merged statistics.
    ///
    /// Panics if any worker panics, if the watchdog limits are exceeded,
    /// or if protocol invariants are violated at quiescence.
    pub fn run(self, programs: Vec<ThreadFn>) -> MachineStats {
        self.run_with_memory(programs).0
    }

    /// Like [`Machine::run`], additionally returning the final simulated
    /// memory for post-run audits (rank sums, final counter values, ...).
    pub fn run_with_memory(self, programs: Vec<ThreadFn>) -> (MachineStats, SimMemory) {
        let (stats, mem, _events) = self.run_counted(programs);
        (stats, mem)
    }

    /// Like [`Machine::run_with_memory`], additionally returning the
    /// number of discrete events the engine processed — the denominator
    /// for host-throughput measurements (`engine_throughput` scenario).
    /// Kept out of [`MachineStats`] so the published simulated metrics
    /// stay exactly the paper's.
    pub fn run_counted(self, programs: Vec<ThreadFn>) -> (MachineStats, SimMemory, u64) {
        let (stats, mem, info) = self.run_counted_info(programs);
        (stats, mem, info.events)
    }

    /// Like [`Machine::run_counted`], returning the full [`EngineInfo`]
    /// (shard count, cross-partition traffic, concurrency headroom) for
    /// the PDES-scaling measurements instead of the bare event count.
    pub fn run_counted_info(
        self,
        programs: Vec<ThreadFn>,
    ) -> (MachineStats, SimMemory, EngineInfo) {
        match self.run_inner(Mode::Live {
            programs,
            record: false,
        }) {
            Ok((stats, mem, info, _)) => (stats, mem, info),
            // Live-mode failures panic inside run_inner; keep the
            // fallback for type completeness.
            Err(abort) => panic!("{}", abort.report),
        }
    }

    /// Like [`Machine::run_counted`], additionally capturing every
    /// worker's op stream (operands, issue times, and observed replies)
    /// plus a pre-run memory snapshot, as a [`MachineTrace`] ready for
    /// [`tracefmt::encode`] and later engine-only replay.
    pub fn run_recorded(self, programs: Vec<ThreadFn>) -> RecordedRun {
        match self.run_inner(Mode::Live {
            programs,
            record: true,
        }) {
            Ok((stats, mem, info, trace)) => RecordedRun {
                stats,
                mem,
                events: info.events,
                trace: trace.expect("recording run produces a trace"),
            },
            Err(abort) => panic!("{}", abort.report),
        }
    }

    /// Engine-only run: instead of spawning workers, pull every request
    /// from `source` on the engine's own thread — no rendezvous slots, no
    /// parked OS threads. `threads` is the simulated core count to drive
    /// (must match the recording for faithful replay). Failures —
    /// including `source` reporting divergence — return a structured
    /// [`SourceAbort`] instead of panicking.
    pub fn run_source(
        self,
        threads: usize,
        source: &mut dyn OpSource,
    ) -> Result<(MachineStats, SimMemory, u64), Box<SourceAbort>> {
        let (stats, mem, info, _) = self.run_inner(Mode::Source { threads, source })?;
        Ok((stats, mem, info.events))
    }

    #[allow(clippy::type_complexity)]
    fn run_inner(
        self,
        mode: Mode<'_>,
    ) -> Result<(MachineStats, SimMemory, EngineInfo, Option<MachineTrace>), Box<SourceAbort>> {
        let trace_depth = self.trace_depth;
        let trace_out = self.trace_out;
        let cfg = self.cfg;
        let shards = self
            .engine_shards
            .unwrap_or_else(engine_shards_from_env)
            .clamp(1, cfg.num_cores);
        let kind = self.eventq.unwrap_or_else(EventQueueKind::from_env);
        let (n, is_live) = match &mode {
            Mode::Live { programs, .. } => (programs.len(), true),
            Mode::Source { threads, .. } => (*threads, false),
        };
        assert!(n >= 1, "no workload threads");
        assert!(
            n <= cfg.num_cores,
            "{n} threads exceed {} cores",
            cfg.num_cores
        );
        // The structured trace ring is one globally-ordered window; the
        // host-parallel relaxed executor cannot feed it, so live tracing
        // runs fall back to lockstep. Engine-only source runs stay
        // single-threaded in every commit mode and may keep the ring —
        // this is what lets `lr-replay` exercise the relaxed executor.
        let mut commit = self.commit.unwrap_or_else(engine_commit_from_env);
        if trace_depth > 0 && is_live {
            commit = CommitMode::Lockstep;
        }

        // Recording is on when explicitly requested (run_recorded) or
        // when a trace output destination was configured.
        let trace_out = if is_live { trace_out } else { None };
        let record = trace_out.is_some() || matches!(mode, Mode::Live { record: true, .. });

        let engine = CoherenceEngine::new(&cfg);
        let mem = self.mem;
        // Conservative-PDES lookahead: every cross-partition event rides
        // at least one cross-tile NoC message — except a probe that
        // races an eviction, which is served from the requester's own
        // home slice (L2 tag + data + local hop); the min() covers that
        // degenerate path for configs with tiny L2 latencies.
        let lookahead = engine
            .noc_min_lookahead()
            .min(cfg.l2_tag_latency + cfg.l2_data_latency + 1);
        // The replayer restores this exact image before re-driving ops,
        // so it must be taken before any simulated execution.
        let pre_image = record.then(|| mem.snapshot());
        let sink: Option<RecordSink> =
            record.then(|| Arc::new(Mutex::new((0..n).map(|_| None).collect())));
        let mut queue = ShardedQueue::with_kind(kind, cfg.num_cores, shards, lookahead);
        // Distance-aware refinement: a pair of partitions exchanges
        // events no faster than the cheapest NoC message between their
        // tile blocks, so mesh-distant (and above all cross-socket)
        // pairs admit proportionally wider safe windows. The same
        // eviction-race cap as the scalar applies per pair, which also
        // keeps every entry ≥ the scalar.
        if queue.map().partitions() > 1 && !self.uniform_lookahead {
            let cap = cfg.l2_tag_latency + cfg.l2_data_latency + 1;
            let m: Vec<Vec<Cycle>> = engine
                .pair_lookahead(&queue.map())
                .into_iter()
                .map(|row| row.into_iter().map(|v| v.min(cap)).collect())
                .collect();
            queue.set_pair_lookahead(m);
        }
        let parts = queue.map().partitions();
        let mut shared = Shared {
            queue,
            tables: (0..cfg.num_cores)
                .map(|_| LeaseTable::new(cfg.lease.clone()))
                .collect(),
            lc: vec![LeaseCounters::default(); cfg.num_cores],
            prioritization: cfg.lease.prioritization,
            trace: TraceRing::new(trace_depth),
        };

        let (transport, handles) = match mode {
            Mode::Live { programs, .. } => {
                let mut req_rx: Vec<SlotReceiver<Request>> = Vec::with_capacity(n);
                let mut reply_tx: Vec<SlotSender<Reply>> = Vec::with_capacity(n);
                let mut handles = Vec::with_capacity(n);
                for (tid, f) in programs.into_iter().enumerate() {
                    let (rtx, rrx) = slot::<Request>();
                    let (ptx, prx) = slot::<Reply>();
                    // A worker's reply may be many engine events away (other
                    // workers' ops are simulated first), so park early instead of
                    // lingering in the host scheduler's rotation and slowing the
                    // handoffs of the pair that is making progress. The engine's
                    // request receiver keeps the default (large) cap: the worker
                    // it just woke is always the very next sender.
                    let prx = prx.with_yield_cap(WORKER_YIELD_CAP / n as u32);
                    let rec = sink.as_ref().map(|s| Recorder::new(s.clone()));
                    let mut tctx = ThreadCtx::new(
                        tid,
                        cfg.instruction_cost,
                        cfg.lease.clone(),
                        cfg.seed,
                        rtx,
                        prx,
                        rec,
                    );
                    handles.push(std::thread::spawn(move || {
                        let r = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut tctx)));
                        tctx.send_exit(r.is_err());
                    }));
                    req_rx.push(rrx);
                    reply_tx.push(ptx);
                }
                (Transport::Live { req_rx, reply_tx }, handles)
            }
            Mode::Source { source, .. } => (Transport::Source(source), Vec::new()),
        };
        // Setup pushes: same-tile sends at t = 0, before any pop — the
        // lookahead discipline never applies to them.
        for tid in 0..n {
            shared.queue.push(tid, 0, tid, 0, Ev::Start(tid));
        }

        let mut core = EngineCore {
            cfg,
            engine,
            shared,
            pctx: (0..parts).map(|_| PartCtx::default()).collect(),
            scratch: (0..parts).map(|_| Scratch::default()).collect(),
            mem,
            transport,
            pending: (0..n).map(|_| None).collect(),
            live: AtomicUsize::new(n),
            finish_time: AtomicU64::new(0),
            exit_inst: vec![0u64; n],
            exit_ops: vec![0u64; n],
            panicked: Mutex::new(Vec::new()),
        };

        // Any failure inside the event loop — watchdog trip, protocol
        // assertion (panic), divergence or deadlock (Err) — is caught
        // and rendered as one coherent report: the failure reason, the
        // trace window, the in-flight protocol state, and every core's
        // lease table. Live runs re-raise the report as a panic; source
        // runs hand it back as a structured `SourceAbort`.
        //
        // Executor choice (N = partitions after clamping):
        //  * N > 1, relaxed, live   → safe-window batches on N host
        //    threads, synchronizing only at window boundaries.
        //  * N > 1, relaxed, source → the same windowed schedule on the
        //    engine's own thread (replay's commit-mode oracle).
        //  * N > 1, lockstep, live  → one host thread per partition,
        //    conservative turn protocol (one event at a time).
        //  * otherwise              → the classic sequential loop.
        // All four run the same per-event `apply`; the first two commit
        // in per-partition window order, the rest in global `(time,
        // key)` order — and the tile-local state discipline makes the
        // simulated results byte-identical either way.
        let relaxed = parts > 1 && commit == CommitMode::Relaxed;
        if relaxed {
            // Mid-flight per-line invariant sweeps read other tiles'
            // caches — between window barriers that is both racy and
            // spuriously wrong (a grant can commit before an
            // earlier-timed invalidation settles in another partition's
            // batch). Quiescence checks still run in finish_checks.
            core.engine.set_strict_at(false);
        }
        let loop_result = if relaxed && is_live {
            run_relaxed_live(&mut core, parts).and_then(|()| {
                std::panic::catch_unwind(AssertUnwindSafe(|| core.finish_checks()))
                    .unwrap_or_else(|p| Err(panic_payload_msg(p.as_ref())))
            })
        } else if relaxed {
            let c = &mut core;
            std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
                run_relaxed_serial(c)?;
                c.finish_checks()
            }))
            .unwrap_or_else(|p| Err(panic_payload_msg(p.as_ref())))
        } else if is_live && parts > 1 {
            run_threaded(&mut core, parts).and_then(|()| {
                std::panic::catch_unwind(AssertUnwindSafe(|| core.finish_checks()))
                    .unwrap_or_else(|p| Err(panic_payload_msg(p.as_ref())))
            })
        } else {
            let c = &mut core;
            std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
                while let Some((t, p, ev)) = c.shared.queue.pop_global() {
                    c.apply(p, t, ev)?;
                }
                c.finish_checks()
            }))
            .unwrap_or_else(|p| Err(panic_payload_msg(p.as_ref())))
        };
        if let Err(reason) = loop_result {
            let report = render_failure_report(&reason, &core.shared, &core.engine, &core.pending);
            if is_live {
                panic!("{report}");
            }
            return Err(Box::new(SourceAbort { reason, report }));
        }
        let EngineCore {
            cfg,
            engine,
            shared,
            pctx,
            scratch: _,
            mem,
            transport,
            pending,
            live: _,
            finish_time,
            exit_inst,
            exit_ops,
            panicked,
        } = core;
        drop(transport);

        for h in handles {
            let _ = h.join();
        }
        let panicked = panicked.into_inner().unwrap_or_else(|e| e.into_inner());
        if !panicked.is_empty() {
            // Same coherent report as a loop failure: the worker panic is
            // the reason, the protocol state is the context.
            let reason = format!("workload thread(s) {panicked:?} panicked inside the simulation");
            panic!(
                "{}",
                render_failure_report(&reason, &shared, &engine, &pending)
            );
        }

        let mut info = queue_info(&shared.queue);
        info.alloc_msgs = pctx.iter().map(|c| c.alloc_msgs).sum();
        let mut stats = engine.stats();
        stats.total_cycles = finish_time.into_inner();
        stats.app_ops = exit_ops.iter().sum();
        for (tid, c) in stats.cores.iter_mut().enumerate().take(n) {
            c.instructions += exit_inst[tid];
            let lc = &shared.lc[tid];
            c.leases_taken += lc.taken;
            c.releases_voluntary += lc.voluntary;
            c.releases_involuntary += lc.involuntary;
            c.lease_overflows += lc.overflow;
            c.leases_broken_by_priority += lc.broken;
            c.multileases += lc.multileases;
        }

        let trace = match sink {
            Some(sink) => {
                // Workers deposited their streams before sending Exit,
                // and every Exit has been received, so the sink is full.
                let mut slots = sink.lock().unwrap_or_else(|e| e.into_inner());
                let cores: Vec<Vec<OpRecord>> = slots
                    .iter_mut()
                    .map(|s| s.take().unwrap_or_default())
                    .collect();
                let trace = MachineTrace {
                    config: cfg.clone(),
                    mem: pre_image.expect("snapshot taken when recording"),
                    cores,
                    stats_json: stats.to_json(),
                    live_events: info.events,
                };
                if let Some(out) = &trace_out {
                    write_trace_file(out, &trace);
                }
                Some(trace)
            }
            None => None,
        };
        Ok((stats, mem, info, trace))
    }
}

/// The engine state: protocol, lease tables, event store, simulated
/// memory, worker transport, and per-core completion bookkeeping.
///
/// Every event goes through [`EngineCore::apply`] with the partition
/// that owns it, and applying an event touches only state owned by the
/// event's tile: its queue partition (plus the source-side outbox rows
/// of the sharded queue), its tiles' engine slices, its cores' lease
/// tables/counters/pending slots/rendezvous endpoints, its partition's
/// context and scratch. The relaxed live executor relies on exactly
/// this — it applies events of *different* partitions concurrently
/// through a shared pointer, with cross-partition effects riding staged
/// messages that are only delivered at window boundaries. The few
/// fields any partition may touch (`live`, `finish_time`, `panicked`)
/// are synchronized explicitly.
struct EngineCore<'a> {
    cfg: SystemConfig,
    engine: CoherenceEngine,
    shared: Shared,
    pctx: Vec<PartCtx>,
    scratch: Vec<Scratch>,
    mem: SimMemory,
    transport: Transport<'a>,
    pending: Vec<Option<Pending>>,
    live: AtomicUsize,
    finish_time: AtomicU64,
    exit_inst: Vec<u64>,
    exit_ops: Vec<u64>,
    panicked: Mutex<Vec<usize>>,
}

impl EngineCore<'_> {
    /// Apply one popped event of partition `p` at time `t`: the single
    /// step every executor is built from.
    fn apply(&mut self, p: usize, t: Cycle, ev: Ev) -> Result<(), String> {
        debug_assert_eq!(
            self.shared.queue.map().partition_of(ev.tile()),
            p,
            "event applied by the wrong partition"
        );
        assert!(
            t <= self.cfg.watchdog_max_cycles,
            "watchdog: simulated time exceeded {} cycles (livelock?)",
            self.cfg.watchdog_max_cycles
        );
        {
            let ps = &mut self.pctx[p];
            // Per-partition share of the event budget (any partition
            // crossing the whole budget alone has certainly blown it;
            // the exact global count is checked at executor
            // synchronization points).
            ps.applied += 1;
            assert!(
                ps.applied <= self.cfg.watchdog_max_events,
                "watchdog: event budget exceeded"
            );
            ps.base = t;
            ps.tile = ev.tile();
        }
        match ev {
            Ev::Start(tid) => self.await_request(tid, t)?,
            Ev::OpStart(tid) => {
                if self.shared.trace.enabled() {
                    self.shared.trace.record(t, TraceEvent::OpStart { tid });
                }
                let Some(Pending::Incoming(op)) = self.pending[tid].take() else {
                    return Err(format!(
                        "OpStart without incoming op for core {tid} at cycle {t}"
                    ));
                };
                self.start_op(p, tid, t, op);
            }
            Ev::OpComplete(tid) => {
                if self.shared.trace.enabled() {
                    self.shared.trace.record(t, TraceEvent::OpComplete { tid });
                }
                self.complete_op(p, tid, t)?;
            }
            Ev::Coh(dest, e) => {
                let mut cx = Ctx {
                    shared: &mut self.shared,
                    ps: &mut self.pctx[p],
                };
                self.engine.handle(t, CoreId(dest), e, &mut cx);
                self.drain(p, t);
            }
            Ev::Expiry {
                core,
                line,
                generation,
            } => {
                if self.shared.tables[core.idx()].on_expiry_into(
                    line,
                    generation,
                    &mut self.scratch[p].lines,
                ) {
                    self.shared.lc[core.idx()].involuntary += self.scratch[p].lines.len() as u64;
                    for i in 0..self.scratch[p].lines.len() {
                        let l = self.scratch[p].lines[i];
                        if self.shared.trace.enabled() {
                            self.shared
                                .trace
                                .record(t, TraceEvent::LeaseExpired { core, line: l });
                        }
                        let mut cx = Ctx {
                            shared: &mut self.shared,
                            ps: &mut self.pctx[p],
                        };
                        self.engine.lease_released(t, core, l, &mut cx);
                    }
                    self.drain(p, t);
                }
            }
            Ev::MemReq { tid, op } => {
                self.pctx[p].alloc_msgs += 1;
                let value = match op {
                    Op::Malloc { size, align } => self.mem.alloc(size, align).0,
                    Op::Free(a) => {
                        self.mem.free(a);
                        0
                    }
                    other => {
                        return Err(format!(
                            "non-heap op routed to the allocator home: {other:?}"
                        ))
                    }
                };
                let back = self
                    .engine
                    .ctrl_latency(CoreId(ALLOC_HOME as u16), CoreId(tid as u16));
                self.shared
                    .queue
                    .push(ALLOC_HOME, t, tid, t + back, Ev::MemReply { tid, value });
            }
            Ev::MemReply { tid, value } => {
                let Some(Pending::Alloc { issued }) = self.pending[tid].take() else {
                    return Err(format!(
                        "MemReply without a pending heap op for core {tid} at cycle {t}"
                    ));
                };
                self.pending[tid] = Some(Pending::Imm {
                    value,
                    flag: true,
                    issued,
                });
                self.shared
                    .queue
                    .push(tid, t, tid, t + ALLOC_COST, Ev::OpComplete(tid));
            }
        }
        Ok(())
    }

    /// End-of-run validation, shared by every executor: no thread may
    /// still be blocked, no transaction in flight, invariants hold.
    fn finish_checks(&mut self) -> Result<(), String> {
        let live = self.live.load(Ordering::Acquire);
        if live != 0 {
            return Err(format!(
                "simulation deadlock: event queue drained with {live} threads blocked"
            ));
        }
        assert_eq!(self.engine.in_flight(), 0);
        self.engine.check_invariants();
        Ok(())
    }

    /// Drain effects deferred by the `CohContext` during partition `p`'s
    /// engine calls.
    ///
    /// The deferred-effect vectors ping-pong with the partition's
    /// scratch via `mem::swap`, so at steady state this allocates
    /// nothing: both sides keep their high-water capacity.
    fn drain(&mut self, p: usize, t: Cycle) {
        loop {
            if self.pctx[p].to_pin.is_empty() && self.pctx[p].deferred_release.is_empty() {
                break;
            }
            {
                let ps = &mut self.pctx[p];
                let sc = &mut self.scratch[p];
                std::mem::swap(&mut ps.to_pin, &mut sc.pins);
                std::mem::swap(&mut ps.deferred_release, &mut sc.rels);
            }
            for i in 0..self.scratch[p].pins.len() {
                let (c, l) = self.scratch[p].pins[i];
                self.engine.pin(c, l, true);
            }
            for i in 0..self.scratch[p].rels.len() {
                let (c, l) = self.scratch[p].rels[i];
                let mut cx = Ctx {
                    shared: &mut self.shared,
                    ps: &mut self.pctx[p],
                };
                self.engine.lease_released(t, c, l, &mut cx);
            }
            self.scratch[p].pins.clear();
            self.scratch[p].rels.clear();
        }
        if !self.pctx[p].completions.is_empty() {
            {
                let ps = &mut self.pctx[p];
                let sc = &mut self.scratch[p];
                std::mem::swap(&mut ps.completions, &mut sc.completions);
            }
            let tile = self.pctx[p].tile;
            for i in 0..self.scratch[p].completions.len() {
                let (token, done) = self.scratch[p].completions[i];
                // Completions are delivered at the requesting core —
                // which is the tile the grant/hit just executed at, so
                // this is a same-tile push.
                self.shared.queue.push(
                    tile,
                    t,
                    token as usize,
                    done,
                    Ev::OpComplete(token as usize),
                );
            }
            self.scratch[p].completions.clear();
        }
    }

    /// Block until worker `tid` sends its next instruction (`tid` is the
    /// only runnable entity of its own pipeline right now). In source
    /// mode this is a plain function call into the [`OpSource`].
    ///
    /// Every executor routes `Start`/`OpComplete` events to `tid`'s own
    /// tile, so each rendezvous slot keeps a stable receiver thread for
    /// its whole life (the slot's pinned-consumer requirement): the
    /// sequential loops always receive on the engine thread, and the
    /// partitioned executors always receive on the host thread owning
    /// `tid`'s partition.
    fn await_request(&mut self, tid: usize, t: Cycle) -> Result<(), String> {
        let r = self.transport.recv(tid)?;
        debug_assert_eq!(r.tid, tid);
        match r.op {
            Op::Exit {
                instructions,
                ops,
                at,
                panicked: p,
            } => {
                self.live.fetch_sub(1, Ordering::AcqRel);
                self.exit_inst[tid] = instructions;
                self.exit_ops[tid] = ops;
                self.finish_time.fetch_max(at, Ordering::AcqRel);
                if p {
                    self.panicked
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(tid);
                }
            }
            op => {
                debug_assert!(self.pending[tid].is_none());
                self.pending[tid] = Some(Pending::Incoming(op));
                self.shared.queue.push(tid, t, tid, r.at, Ev::OpStart(tid));
            }
        }
        Ok(())
    }

    /// Immediate completion with a precomputed result after `delay`.
    fn imm(&mut self, tid: usize, t: Cycle, value: u64, flag: bool, delay: Cycle) {
        self.pending[tid] = Some(Pending::Imm {
            value,
            flag,
            issued: t,
        });
        self.shared
            .queue
            .push(tid, t, tid, t + delay, Ev::OpComplete(tid));
    }

    /// Begin executing one instruction at its issue time `t`.
    fn start_op(&mut self, p: usize, tid: usize, t: Cycle, op: Op) {
        let core = CoreId(tid as u16);
        let token = tid as u64;
        match op {
            Op::Read(a)
            | Op::Write(a, _)
            | Op::Cas { addr: a, .. }
            | Op::Faa { addr: a, .. }
            | Op::Xchg { addr: a, .. } => {
                let kind = match op {
                    Op::Read(_) => AccessKind::Load,
                    Op::Write(..) => AccessKind::Store,
                    _ => AccessKind::Rmw,
                };
                let hit = {
                    let mut cx = Ctx {
                        shared: &mut self.shared,
                        ps: &mut self.pctx[p],
                    };
                    self.engine
                        .access(t, token, core, a.line(), kind, false, true, &mut cx)
                };
                if let Some(done) = hit {
                    self.shared
                        .queue
                        .push(tid, t, tid, done, Ev::OpComplete(tid));
                }
                self.pending[tid] = Some(Pending::Data { op, issued: t });
                self.drain(p, t);
            }
            Op::Lease { addr, time } => {
                let line = addr.line();
                match self.shared.tables[tid].begin_lease(line, time) {
                    BeginLease::AlreadyLeased => {
                        self.imm(tid, t, 0, false, 1);
                    }
                    BeginLease::Inserted { displaced } => {
                        for d in displaced {
                            self.shared.lc[tid].overflow += 1;
                            let mut cx = Ctx {
                                shared: &mut self.shared,
                                ps: &mut self.pctx[p],
                            };
                            self.engine.lease_released(t, core, d, &mut cx);
                        }
                        self.shared.lc[tid].taken += 1;
                        let hit = {
                            let mut cx = Ctx {
                                shared: &mut self.shared,
                                ps: &mut self.pctx[p],
                            };
                            self.engine.access(
                                t,
                                token,
                                core,
                                line,
                                AccessKind::Rmw,
                                true,
                                false,
                                &mut cx,
                            )
                        };
                        if let Some(done) = hit {
                            self.shared
                                .queue
                                .push(tid, t, tid, done, Ev::OpComplete(tid));
                        }
                        self.pending[tid] = Some(Pending::LeaseAcq { issued: t });
                    }
                }
                self.drain(p, t);
            }
            Op::Release { addr } => {
                let line = addr.line();
                let flag = self.shared.tables[tid].release_into(line, &mut self.scratch[p].lines);
                self.shared.lc[tid].voluntary += self.scratch[p].lines.len() as u64;
                for i in 0..self.scratch[p].lines.len() {
                    let l = self.scratch[p].lines[i];
                    if self.shared.trace.enabled() {
                        self.shared.trace.record(
                            t,
                            TraceEvent::LeaseReleased {
                                core,
                                line: l,
                                voluntary: true,
                            },
                        );
                    }
                    let mut cx = Ctx {
                        shared: &mut self.shared,
                        ps: &mut self.pctx[p],
                    };
                    self.engine.lease_released(t, core, l, &mut cx);
                }
                self.imm(tid, t, 0, flag, 1);
                self.drain(p, t);
            }
            Op::MultiLease { addrs, time } => {
                let lines: Vec<LineAddr> = addrs.iter().map(|a| a.line()).collect();
                match self.shared.tables[tid].begin_multilease(&lines, time) {
                    MultiLeaseBegin::Rejected { released } => {
                        self.shared.lc[tid].voluntary += released.len() as u64;
                        for l in released {
                            let mut cx = Ctx {
                                shared: &mut self.shared,
                                ps: &mut self.pctx[p],
                            };
                            self.engine.lease_released(t, core, l, &mut cx);
                        }
                        self.imm(tid, t, 0, false, 1);
                    }
                    MultiLeaseBegin::Admitted {
                        released,
                        sorted_lines,
                    } => {
                        self.shared.lc[tid].voluntary += released.len() as u64;
                        for l in released {
                            let mut cx = Ctx {
                                shared: &mut self.shared,
                                ps: &mut self.pctx[p],
                            };
                            self.engine.lease_released(t, core, l, &mut cx);
                        }
                        if sorted_lines.is_empty() {
                            self.imm(tid, t, 0, true, 1);
                        } else {
                            self.shared.lc[tid].multileases += 1;
                            self.shared.lc[tid].taken += sorted_lines.len() as u64;
                            let first = sorted_lines[0];
                            let hit = {
                                let mut cx = Ctx {
                                    shared: &mut self.shared,
                                    ps: &mut self.pctx[p],
                                };
                                self.engine.access(
                                    t,
                                    token,
                                    core,
                                    first,
                                    AccessKind::Rmw,
                                    true,
                                    false,
                                    &mut cx,
                                )
                            };
                            if let Some(done) = hit {
                                self.shared
                                    .queue
                                    .push(tid, t, tid, done, Ev::OpComplete(tid));
                            }
                            self.pending[tid] = Some(Pending::Multi {
                                lines: sorted_lines,
                                idx: 0,
                                issued: t,
                            });
                        }
                    }
                }
                self.drain(p, t);
            }
            Op::ReleaseAll => {
                self.shared.tables[tid].release_all_into(&mut self.scratch[p].lines);
                self.shared.lc[tid].voluntary += self.scratch[p].lines.len() as u64;
                for i in 0..self.scratch[p].lines.len() {
                    let l = self.scratch[p].lines[i];
                    if self.shared.trace.enabled() {
                        self.shared.trace.record(
                            t,
                            TraceEvent::LeaseReleased {
                                core,
                                line: l,
                                voluntary: true,
                            },
                        );
                    }
                    let mut cx = Ctx {
                        shared: &mut self.shared,
                        ps: &mut self.pctx[p],
                    };
                    self.engine.lease_released(t, core, l, &mut cx);
                }
                self.imm(tid, t, 0, true, 1);
                self.drain(p, t);
            }
            Op::Malloc { .. } | Op::Free(_) => {
                // The heap allocator is global machine state: route the
                // request to the allocator home tile as a message. The
                // simulated cost model becomes ALLOC_COST plus the NoC
                // control round trip — identical for every executor.
                self.pending[tid] = Some(Pending::Alloc { issued: t });
                let go = self.engine.ctrl_latency(core, CoreId(ALLOC_HOME as u16));
                self.shared
                    .queue
                    .push(tid, t, ALLOC_HOME, t + go, Ev::MemReq { tid, op });
            }
            Op::Exit { .. } => unreachable!("Exit handled in await_request"),
        }
    }

    /// Finish one instruction at its completion time: move data, account
    /// statistics, wake the worker, and wait for its next instruction.
    fn complete_op(&mut self, p: usize, tid: usize, t: Cycle) -> Result<(), String> {
        let pd = self.pending[tid].take().ok_or_else(|| {
            format!("OpComplete for core {tid} at cycle {t} without a pending op")
        })?;
        let core = CoreId(tid as u16);
        let (value, flag, issued) = match pd {
            Pending::Data { op, issued } => {
                let mem = &mut self.mem;
                let cs = self.engine.core_stats_mut(core);
                let (value, flag) = match op {
                    Op::Read(a) => {
                        cs.loads += 1;
                        (mem.read_word(a), false)
                    }
                    Op::Write(a, v) => {
                        cs.stores += 1;
                        mem.write_word(a, v);
                        (0, false)
                    }
                    Op::Cas {
                        addr,
                        expected,
                        new,
                    } => {
                        cs.cas_attempts += 1;
                        let old = mem.read_word(addr);
                        let ok = old == expected;
                        if ok {
                            mem.write_word(addr, new);
                        } else {
                            cs.cas_failures += 1;
                        }
                        (old, ok)
                    }
                    Op::Faa { addr, delta } => {
                        cs.rmw_ops += 1;
                        let old = mem.read_word(addr);
                        mem.write_word(addr, old.wrapping_add(delta));
                        (old, true)
                    }
                    Op::Xchg { addr, value } => {
                        cs.rmw_ops += 1;
                        let old = mem.read_word(addr);
                        mem.write_word(addr, value);
                        (old, true)
                    }
                    other => unreachable!("non-data op in Data pending: {other:?}"),
                };
                (value, flag, issued)
            }
            Pending::LeaseAcq { issued } => (0, true, issued),
            Pending::Multi { lines, idx, issued } => {
                if idx + 1 < lines.len() {
                    // Acquire the next line of the group, in order.
                    let hit = {
                        let mut cx = Ctx {
                            shared: &mut self.shared,
                            ps: &mut self.pctx[p],
                        };
                        self.engine.access(
                            t,
                            tid as u64,
                            core,
                            lines[idx + 1],
                            AccessKind::Rmw,
                            true,
                            false,
                            &mut cx,
                        )
                    };
                    if let Some(done) = hit {
                        self.shared
                            .queue
                            .push(tid, t, tid, done, Ev::OpComplete(tid));
                    }
                    self.pending[tid] = Some(Pending::Multi {
                        lines,
                        idx: idx + 1,
                        issued,
                    });
                    self.drain(p, t);
                    return Ok(());
                }
                (0, true, issued)
            }
            Pending::Imm {
                value,
                flag,
                issued,
            } => (value, flag, issued),
            Pending::Alloc { .. } => unreachable!("completion before the allocator replied"),
            Pending::Incoming(_) => unreachable!("completion before start"),
        };
        self.engine.core_stats_mut(core).mem_stall_cycles += t - issued;
        self.transport.reply(
            tid,
            Reply {
                time: t,
                value,
                flag,
            },
        )?;
        self.await_request(tid, t)
    }
}

/// Drive `core` with one host thread per partition under the
/// conservative lockstep turn protocol: the thread owning the partition
/// of the globally next event applies it; everyone else waits on the
/// turn condvar. This pops the exact `(time, key)` sequence of the
/// sequential loop — one event at a time, under one mutex. It is the
/// commit-mode A/B reference for [`run_relaxed_live`], and the executor
/// live traced runs fall back to (the trace ring needs globally ordered
/// commits).
///
/// Worker rendezvous stays sound: core `tid`'s `Start`/`OpComplete`
/// events are routed to `tid`'s tile, so its request slot is always
/// received on the same host thread (the slot's receiver affinity
/// requirement), and blocking in `recv` while holding the turn mutex is
/// the lockstep invariant — the sending worker is the only runnable
/// entity, and it never takes this mutex.
fn run_threaded(core: &mut EngineCore<'_>, shards: usize) -> Result<(), String> {
    struct Turn<'c, 'a> {
        core: &'c mut EngineCore<'a>,
        fail: Option<String>,
        done: bool,
    }
    let turn = Mutex::new(Turn {
        core,
        fail: None,
        done: false,
    });
    let cv = Condvar::new();
    std::thread::scope(|s| {
        for p in 0..shards {
            let (turn, cv) = (&turn, &cv);
            s.spawn(move || {
                let mut g = turn.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if g.done || g.fail.is_some() {
                        break;
                    }
                    match g.core.shared.queue.head_partition() {
                        None => {
                            g.done = true;
                            cv.notify_all();
                            break;
                        }
                        Some(q) if q == p => {
                            let core = &mut *g.core;
                            // The catch is *inside* the lock so an apply
                            // panic (watchdog, protocol bug) becomes a
                            // recorded failure, never a poisoned mutex.
                            let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                let (t, part, ev) = core
                                    .shared
                                    .queue
                                    .pop_global()
                                    .expect("head_partition saw an event");
                                debug_assert_eq!(part, p);
                                core.apply(part, t, ev)
                            }));
                            match res {
                                Ok(Ok(())) => cv.notify_all(),
                                Ok(Err(reason)) => {
                                    g.fail = Some(reason);
                                    cv.notify_all();
                                    break;
                                }
                                Err(payload) => {
                                    g.fail = Some(panic_payload_msg(payload.as_ref()));
                                    cv.notify_all();
                                    break;
                                }
                            }
                        }
                        Some(_) => g = cv.wait(g).unwrap_or_else(|e| e.into_inner()),
                    }
                }
            });
        }
    });
    let t = turn.into_inner().unwrap_or_else(|e| e.into_inner());
    match t.fail {
        Some(reason) => Err(reason),
        None => Ok(()),
    }
}

/// The relaxed windowed schedule on one host thread: open a safe window
/// ([`ShardedQueue::begin_window`]), drain every partition's batch in
/// partition order, repeat. This applies events in a *different order*
/// than the sequential `pop_global` loop (per-partition batches instead
/// of global time order) while producing byte-identical simulated
/// results — the single-threaded oracle for the relaxed commit
/// discipline, and the executor engine-only (replay) runs use under
/// relaxed commit.
fn run_relaxed_serial(core: &mut EngineCore<'_>) -> Result<(), String> {
    let budget = core.cfg.watchdog_max_events;
    while let Some(bounds) = core.shared.queue.begin_window() {
        if core.shared.queue.processed() > budget {
            return Err("watchdog: event budget exceeded".to_string());
        }
        for (p, &bound) in bounds.iter().enumerate() {
            while let Some((t, ev)) = core.shared.queue.pop_bounded(p, bound) {
                core.apply(p, t, ev)?;
            }
        }
    }
    Ok(())
}

/// Raw shared handle to the engine core for the relaxed live executor.
///
/// SAFETY contract (upheld by [`run_relaxed_live`]): between window
/// barriers, the thread of partition `p` applies only partition-`p`
/// events, and [`EngineCore::apply`] on such an event touches only
/// state owned by the event's tile — its queue partition (plus the
/// source-partition outbox rows and counters of the sharded queue), its
/// tiles' engine slices, its cores' lease tables/counters/pending
/// slots/rendezvous endpoints, its partition's context and scratch —
/// or the explicitly synchronized fields (`live`, `finish_time`,
/// `panicked`, the atomic page-install path of [`SimMemory`]). The
/// coordinator touches the core only while every worker is parked at
/// the barrier; the barrier mutex orders those accesses.
#[derive(Clone, Copy)]
struct CorePtr(*mut ());

unsafe impl Send for CorePtr {}

/// Drive `core` with one persistent host thread per partition under
/// relaxed commit: the coordinator opens a safe window, publishes the
/// per-partition bounds, and every partition thread commits its whole
/// batch concurrently with no per-event synchronization — threads meet
/// only at the generation-counted window barrier. The tile-local event
/// discipline (see [`EngineCore`]) makes this produce byte-identical
/// simulated results to the lockstep executors.
fn run_relaxed_live(core: &mut EngineCore<'_>, shards: usize) -> Result<(), String> {
    struct WinState {
        generation: u64,
        bounds: Vec<Cycle>,
        remaining: usize,
        stop: bool,
        fail: Option<String>,
    }
    let budget = core.cfg.watchdog_max_events;
    let m = Mutex::new(WinState {
        generation: 0,
        bounds: Vec::new(),
        remaining: 0,
        stop: false,
        fail: None,
    });
    let start = Condvar::new();
    let done = Condvar::new();
    let ptr = CorePtr(core as *mut EngineCore<'_> as *mut ());
    let mut result = Ok(());
    std::thread::scope(|s| {
        for p in 0..shards {
            let (m, start, done) = (&m, &start, &done);
            // Partition threads persist across all windows, so each
            // core's rendezvous slot keeps one receiver thread for the
            // whole run (the slot's pinned-consumer contract). Scope
            // join is safe even on failure: a worker blocked in `recv`
            // always returns — its workload thread sends Exit even when
            // panicking — so every partition reaches the barrier.
            s.spawn(move || {
                // Capture the whole Send wrapper, not the raw field
                // (edition-2021 closures capture disjoint fields).
                let ptr = ptr;
                let mut seen = 0u64;
                loop {
                    let (bound, skip) = {
                        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                        while g.generation == seen && !g.stop {
                            g = start.wait(g).unwrap_or_else(|e| e.into_inner());
                        }
                        if g.stop {
                            return;
                        }
                        seen = g.generation;
                        (g.bounds[p], g.fail.is_some())
                    };
                    let res = if skip {
                        // A sibling already failed: commit nothing, just
                        // keep the barrier protocol moving to shutdown.
                        Ok(())
                    } else {
                        std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
                            // SAFETY: see [`CorePtr`] — partition-disjoint
                            // access between barriers.
                            let core = unsafe { &mut *(ptr.0 as *mut EngineCore) };
                            while let Some((t, ev)) = core.shared.queue.pop_bounded(p, bound) {
                                core.apply(p, t, ev)?;
                            }
                            Ok(())
                        }))
                        .unwrap_or_else(|pl| Err(panic_payload_msg(pl.as_ref())))
                    };
                    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                    if let Err(reason) = res {
                        if g.fail.is_none() {
                            g.fail = Some(reason);
                        }
                    }
                    g.remaining -= 1;
                    if g.remaining == 0 {
                        done.notify_all();
                    }
                }
            });
        }
        loop {
            // Between windows every worker is parked at the barrier, so
            // the coordinator has exclusive access to the core.
            let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: see [`CorePtr`] — exclusive between windows.
                let core = unsafe { &mut *(ptr.0 as *mut EngineCore) };
                (
                    core.shared.queue.begin_window(),
                    core.shared.queue.processed(),
                )
            }));
            let bounds = match step {
                Err(pl) => {
                    result = Err(panic_payload_msg(pl.as_ref()));
                    None
                }
                Ok((_, processed)) if processed > budget => {
                    result = Err("watchdog: event budget exceeded".to_string());
                    None
                }
                Ok((b, _)) => b,
            };
            match bounds {
                None => {
                    // Drained (or the coordinator itself failed): stop.
                    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                    g.stop = true;
                    drop(g);
                    start.notify_all();
                    break;
                }
                Some(b) => {
                    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                    g.generation += 1;
                    g.bounds = b;
                    g.remaining = shards;
                    start.notify_all();
                    while g.remaining > 0 {
                        g = done.wait(g).unwrap_or_else(|e| e.into_inner());
                    }
                    if let Some(f) = g.fail.take() {
                        result = Err(f);
                        g.stop = true;
                        drop(g);
                        start.notify_all();
                        break;
                    }
                }
            }
        }
    });
    result
}

/// Best-effort extraction of a panic payload's message.
fn panic_payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// One coherent diagnosis of a failed simulation: the failure reason, the
/// structured trace window, the engine's in-flight protocol state, and
/// every core's lease table.
fn render_failure_report(
    reason: &str,
    shared: &Shared,
    engine: &CoherenceEngine,
    pending: &[Option<Pending>],
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "==== simulation failure report ====");
    let _ = writeln!(s, "reason: {reason}");
    let _ = writeln!(s, "-- trace window --");
    if shared.trace.enabled() {
        let _ = writeln!(
            s,
            "  ({} retained of {} recorded events)",
            shared.trace.len(),
            shared.trace.recorded()
        );
        s.push_str(&shared.trace.render());
    } else {
        let _ = writeln!(
            s,
            "  (tracing off; build the machine with Machine::with_trace(depth) to capture events)"
        );
    }
    let _ = writeln!(s, "-- in-flight protocol state --");
    let dump = engine.debug_dump();
    if dump.is_empty() {
        let _ = writeln!(s, "  (quiescent)");
    } else {
        s.push_str(&dump);
    }
    let _ = writeln!(s, "-- lease tables --");
    for (i, tbl) in shared.tables.iter().enumerate() {
        let _ = writeln!(s, " core{i}:");
        s.push_str(&tbl.debug_dump());
    }
    let _ = writeln!(s, "-- pending ops --");
    let mut any = false;
    for (tid, p) in pending.iter().enumerate() {
        if let Some(p) = p {
            any = true;
            let _ = writeln!(s, "  tid{tid}: {p:?}");
        }
    }
    if !any {
        let _ = writeln!(s, "  (none)");
    }
    let _ = writeln!(s, "===================================");
    s
}
