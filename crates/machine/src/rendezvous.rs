//! Spin-then-park SPSC rendezvous slots — the worker ⇄ engine handoff.
//!
//! The lockstep runtime has a very particular communication pattern:
//! exactly one entity (the engine or one worker) is runnable at any
//! moment, and every simulated instruction is one request/reply round
//! trip. A general MPMC channel (`std::sync::mpsc`) pays a heap
//! allocation per message and an OS futex sleep/wake per round trip for
//! flexibility this pattern never uses. A [`slot`] is the minimal
//! mechanism instead: a single-value cell, one fixed producer, one
//! fixed consumer, with the consumer spinning briefly before parking —
//! under lockstep the peer is usually mid-handoff, so the value almost
//! always arrives within the spin window and both OS context switches
//! are elided.
//!
//! ## Contract
//!
//! * **Rendezvous**: at most one value is in flight. The sender must
//!   not send again until the receiver has taken the previous value.
//!   The machine's request/reply alternation guarantees this
//!   structurally; a violation panics.
//! * **Pinned consumer**: the receiver registers its thread handle on
//!   first park and must keep receiving from that thread (the machine
//!   never migrates an endpoint; debug builds assert it).
//! * **Hangup**: dropping either endpoint closes the slot. A pending
//!   value survives the close (the worker's `Exit` message is sent
//!   immediately before its sender drops); subsequent operations
//!   return [`Closed`], and a parked receiver is woken so nobody hangs
//!   on a slot that can never be filled again.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::Thread;

/// The peer endpoint was dropped (and no value remains to drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
/// The consumer is parked (or about to park) waiting for a value.
const WAITING: u8 = 2;

/// Default pure-spin iterations before yielding. Only useful on
/// multicore hosts (the peer must be able to run *while* we spin);
/// covers the peer's handoff work when it is already on another core.
/// Overridable at process start via `LR_SPIN_ROUNDS` (see
/// [`configured_spin_rounds`]) so the fuzz farm and benches can sweep
/// the handoff tuning space.
///
/// Tuning data (`LR_FORCE_SPIN=1 LR_SPIN_ROUNDS=… lr-bench --scenario
/// engine_throughput --threads 8 --ops 4000`, single-hardware-thread
/// container): spinning where the peer cannot run is pure loss, and the
/// loss scales linearly with the round count — contended-faa retires
/// 440k sim-ops/s at 0 rounds, 296k at 32, 145k at 128, 51k at 512,
/// 14k at 2048 (private-rw and events-resident degrade in the same
/// ratios). The un-forced default path measures within noise of the
/// 0-round row, i.e. the `available_parallelism` probe that disables
/// the spin phase on single-threaded hosts is doing exactly its job —
/// which is why 128 is safe to keep as the multicore default: it is
/// never reached on hosts where it measures as harmful, and on
/// multicore hosts it covers the peer's ~100-cycle handoff window
/// without approaching the yield phase's cost. A multicore host should
/// re-run the sweep before changing it.
const SPIN_ROUNDS: u32 = 128;

/// Upper bound accepted from `LR_SPIN_ROUNDS`: beyond ~1M iterations a
/// spin phase only burns the peer's share of the CPU budget, so larger
/// settings are treated as configuration errors.
const SPIN_ROUNDS_MAX: u32 = 1 << 20;

/// Bounds for the adaptive `yield_now` budget before parking. A
/// yielding waiter stays *runnable* — when the value lands it resumes
/// on the next scheduling slot with no futex wake (the sender pays no
/// syscall at all, since the state never reads `WAITING`). This is the
/// phase that does the work on oversubscribed or single-core hosts,
/// where every handoff inherently needs a context switch and
/// `sched_yield` is several times cheaper than a park/unpark pair.
///
/// The budget adapts per receiver: catching a value while yielding
/// doubles it (the engine, and workers in a hot handoff pair, converge
/// to the cap), falling through to park halves it (workers whose
/// replies are many engine events away converge to one token yield and
/// stop polluting the scheduler's rotation with wasted slices).
const YIELD_MIN: u32 = 1;
const YIELD_MAX: u32 = 256;
const YIELD_INIT: u32 = 64;

/// Cached `available_parallelism` (0 = not yet probed): pure spinning
/// is pointless on a single hardware thread, so `recv` skips it there.
static HOST_CORES: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Cached `LR_FORCE_SPIN` probe: 0 = not yet read, 1 = forced on,
/// 2 = off. `LR_FORCE_SPIN=1` makes `recv` run the pure-spin phase even
/// on a single hardware thread, so the spin path is exercisable (and
/// unit-testable) on single-core CI containers.
static FORCE_SPIN: AtomicU8 = AtomicU8::new(0);

fn force_spin() -> bool {
    match FORCE_SPIN.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var_os("LR_FORCE_SPIN").is_some_and(|v| v == "1");
            FORCE_SPIN.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Cached `LR_SPIN_ROUNDS` probe (`u32::MAX` = not yet read; the
/// sentinel can never be a stored value because valid settings are
/// capped at [`SPIN_ROUNDS_MAX`]).
static SPIN_OVERRIDE: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(u32::MAX);

/// Validate one `LR_SPIN_ROUNDS` setting: a base-10 integer in
/// `0..=SPIN_ROUNDS_MAX` (0 disables the pure-spin phase entirely).
/// Pure, so the validation is unit-testable without touching the
/// process environment.
fn parse_spin_rounds(raw: &str) -> Option<u32> {
    let v = raw.trim().parse::<u32>().ok()?;
    (v <= SPIN_ROUNDS_MAX).then_some(v)
}

/// The pure-spin round count in effect: `LR_SPIN_ROUNDS` if set to a
/// valid value, else [`SPIN_ROUNDS`]. An invalid setting warns once on
/// stderr and falls back to the default rather than silently changing
/// the handoff behaviour. Read once per process and cached.
pub fn configured_spin_rounds() -> u32 {
    let cached = SPIN_OVERRIDE.load(Ordering::Relaxed);
    if cached != u32::MAX {
        return cached;
    }
    let v = match std::env::var("LR_SPIN_ROUNDS") {
        Ok(s) if !s.is_empty() => parse_spin_rounds(&s).unwrap_or_else(|| {
            eprintln!(
                "lr-machine: ignoring invalid LR_SPIN_ROUNDS={s:?} \
                 (want an integer in 0..={SPIN_ROUNDS_MAX}); using {SPIN_ROUNDS}"
            );
            SPIN_ROUNDS
        }),
        _ => SPIN_ROUNDS,
    };
    SPIN_OVERRIDE.store(v, Ordering::Relaxed);
    v
}

fn spin_rounds() -> u32 {
    if force_spin() {
        return configured_spin_rounds();
    }
    let mut n = HOST_CORES.load(Ordering::Relaxed);
    if n == 0 {
        n = std::thread::available_parallelism()
            .map(|p| p.get() as u32)
            .unwrap_or(1);
        HOST_CORES.store(n, Ordering::Relaxed);
    }
    if n > 1 {
        configured_spin_rounds()
    } else {
        0
    }
}

struct Inner<T> {
    state: AtomicU8,
    closed: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
    /// Consumer thread handle, written once by the receiver before its
    /// first transition to `WAITING`; read by the sender only after
    /// observing `WAITING` (the CAS/swap pair orders the accesses).
    waiter: UnsafeCell<Option<Thread>>,
}

// The value cell is accessed under the `state` protocol (single
// producer, single consumer, handoff ordered by the atomic); the waiter
// cell is written before `WAITING` is ever published and read only
// after observing it.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == FULL {
            // A value was sent but never taken (e.g. the receiver side
            // unwound): drop it with the cell.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
    }
}

/// Producer endpoint of a rendezvous [`slot`].
pub struct SlotSender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer endpoint of a rendezvous [`slot`].
pub struct SlotReceiver<T> {
    inner: Arc<Inner<T>>,
    registered: bool,
    /// Adaptive yield budget (see [`YIELD_MAX`]).
    budget: u32,
    /// Upper bound for `budget` (see [`SlotReceiver::with_yield_cap`]).
    cap: u32,
    #[cfg(debug_assertions)]
    home: Option<std::thread::ThreadId>,
}

/// A new rendezvous slot: one producer, one consumer, one value.
pub fn slot<T: Send>() -> (SlotSender<T>, SlotReceiver<T>) {
    let inner = Arc::new(Inner {
        state: AtomicU8::new(EMPTY),
        closed: AtomicBool::new(false),
        value: UnsafeCell::new(MaybeUninit::uninit()),
        waiter: UnsafeCell::new(None),
    });
    (
        SlotSender {
            inner: inner.clone(),
        },
        SlotReceiver {
            inner,
            registered: false,
            budget: YIELD_INIT,
            cap: YIELD_MAX,
            #[cfg(debug_assertions)]
            home: None,
        },
    )
}

impl<T: Send> SlotSender<T> {
    /// Hand one value to the consumer, waking it if it parked.
    ///
    /// Never blocks: the rendezvous contract guarantees the slot is
    /// empty whenever the protocol allows a send.
    pub fn send(&self, v: T) -> Result<(), Closed> {
        let inner = &*self.inner;
        if inner.closed.load(Ordering::Acquire) {
            return Err(Closed);
        }
        unsafe { (*inner.value.get()).write(v) };
        match inner.state.swap(FULL, Ordering::SeqCst) {
            EMPTY => Ok(()),
            WAITING => {
                // The write of `waiter` happened before the consumer
                // published WAITING; our swap observed WAITING, so the
                // handle is visible.
                let t = unsafe { (*inner.waiter.get()).clone() }
                    .expect("WAITING state without a registered consumer");
                t.unpark();
                Ok(())
            }
            _ => panic!("rendezvous violation: send into a full slot"),
        }
    }
}

impl<T> Drop for SlotSender<T> {
    fn drop(&mut self) {
        let inner = &*self.inner;
        inner.closed.store(true, Ordering::SeqCst);
        if inner.state.load(Ordering::SeqCst) == WAITING {
            if let Some(t) = unsafe { (*inner.waiter.get()).clone() } {
                t.unpark();
            }
        }
    }
}

impl<T: Send> SlotReceiver<T> {
    /// Take the next value, spinning briefly and then parking until the
    /// producer fills the slot. Returns [`Closed`] once the producer
    /// has dropped and any final value has been drained.
    pub fn recv(&mut self) -> Result<T, Closed> {
        // Phase 1: pure spin (multicore only) — catches a peer that is
        // mid-handoff on another core without any syscall.
        for _ in 0..spin_rounds() {
            if self.inner.state.load(Ordering::Acquire) == FULL {
                return Ok(self.take());
            }
            std::hint::spin_loop();
        }
        // Phase 2: yielding spin — stay runnable (the sender never pays
        // an unpark) while letting whoever produces the value run.
        for _ in 0..self.budget {
            if self.inner.state.load(Ordering::Acquire) == FULL {
                self.budget = (self.budget * 2).min(self.cap);
                return Ok(self.take());
            }
            if self.inner.closed.load(Ordering::SeqCst) {
                break;
            }
            std::thread::yield_now();
        }
        // Phase 3: park until the sender (or a close) wakes us.
        self.budget = (self.budget / 2).max(YIELD_MIN);
        loop {
            if self.inner.state.load(Ordering::Acquire) == FULL {
                return Ok(self.take());
            }
            if self.inner.closed.load(Ordering::SeqCst) {
                // Drain a value that raced ahead of the close.
                if self.inner.state.load(Ordering::SeqCst) == FULL {
                    return Ok(self.take());
                }
                return Err(Closed);
            }
            self.register();
            if self
                .inner
                .state
                .compare_exchange(EMPTY, WAITING, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // A value (or close) arrived between the spin and the
                // CAS; re-run the fast path.
                continue;
            }
            loop {
                if self.inner.closed.load(Ordering::SeqCst) {
                    // Roll WAITING back unless a send raced the close.
                    if self
                        .inner
                        .state
                        .compare_exchange(WAITING, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return Err(Closed);
                    }
                    return Ok(self.take());
                }
                std::thread::park();
                if self.inner.state.load(Ordering::SeqCst) == FULL {
                    return Ok(self.take());
                }
                // Spurious wakeup or a close-unpark: loop re-checks.
            }
        }
    }

    /// Cap the adaptive yield budget. A waiter whose values routinely
    /// take many scheduling slots to arrive (a worker whose reply is
    /// several engine events away) should park early rather than keep
    /// itself in the scheduler's rotation, slowing the pair that is
    /// actually making progress; a waiter whose values are always the
    /// very next thing (the engine awaiting the request of the worker
    /// it just woke) should keep yielding.
    pub fn with_yield_cap(mut self, cap: u32) -> Self {
        self.cap = cap.max(YIELD_MIN);
        self.budget = self.budget.min(self.cap);
        self
    }

    /// Register the consumer thread handle (once; see module contract).
    fn register(&mut self) {
        #[cfg(debug_assertions)]
        {
            let me = std::thread::current().id();
            match self.home {
                None => self.home = Some(me),
                Some(h) => {
                    debug_assert_eq!(h, me, "SlotReceiver migrated threads between recv() calls")
                }
            }
        }
        if !self.registered {
            unsafe { *self.inner.waiter.get() = Some(std::thread::current()) };
            self.registered = true;
        }
    }

    fn take(&self) -> T {
        // state == FULL: the producer's value write happens-before the
        // Acquire/SeqCst load that observed it.
        let v = unsafe { (*self.inner.value.get()).assume_init_read() };
        self.inner.state.store(EMPTY, Ordering::Release);
        v
    }
}

impl<T> Drop for SlotReceiver<T> {
    fn drop(&mut self) {
        // The producer never parks, so closing is just the flag; its
        // next send observes it and errors instead of writing.
        self.inner.closed.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_handoff() {
        let (tx, mut rx) = slot::<u64>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn ping_pong_across_threads() {
        let (req_tx, mut req_rx) = slot::<u64>();
        let (rep_tx, mut rep_rx) = slot::<u64>();
        let n = 10_000u64;
        let worker = std::thread::spawn(move || {
            let mut acc = 0;
            for i in 0..n {
                req_tx.send(i).unwrap();
                acc += rep_rx.recv().unwrap();
            }
            acc
        });
        for _ in 0..n {
            let v = req_rx.recv().unwrap();
            rep_tx.send(v * 2).unwrap();
        }
        assert_eq!(worker.join().unwrap(), (0..n).map(|i| i * 2).sum());
    }

    #[test]
    fn parked_receiver_is_woken_by_send() {
        let (tx, mut rx) = slot::<u64>();
        let h = std::thread::spawn(move || rx.recv());
        // Give the receiver time to spin out and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn sender_drop_wakes_and_closes() {
        let (tx, mut rx) = slot::<u64>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(Closed));
    }

    #[test]
    fn value_sent_before_close_is_drained() {
        let (tx, mut rx) = slot::<String>();
        tx.send("exit".to_string()).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("exit".to_string()));
        assert_eq!(rx.recv(), Err(Closed));
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = slot::<u64>();
        drop(rx);
        assert_eq!(tx.send(1), Err(Closed));
    }

    #[test]
    fn unreceived_value_is_dropped_with_slot() {
        let v = std::sync::Arc::new(());
        let (tx, rx) = slot::<std::sync::Arc<()>>();
        tx.send(v.clone()).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(std::sync::Arc::strong_count(&v), 1, "value leaked");
    }

    /// Serializes tests that poke the cached probe statics
    /// (`FORCE_SPIN`, `SPIN_OVERRIDE`): parallel test threads would
    /// otherwise observe each other's stores.
    static PROBE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn force_spin_overrides_single_core_probe() {
        let _g = PROBE_LOCK.lock().unwrap();
        // With the override armed, the pure-spin phase must run at full
        // strength regardless of what available_parallelism reports.
        FORCE_SPIN.store(1, Ordering::Relaxed);
        assert_eq!(spin_rounds(), configured_spin_rounds());

        // Drive real cross-thread handoffs through the forced spin path
        // (on a single-core container this otherwise never executes).
        let (req_tx, mut req_rx) = slot::<u64>();
        let (rep_tx, mut rep_rx) = slot::<u64>();
        let n = 2_000u64;
        let worker = std::thread::spawn(move || {
            let mut acc = 0;
            for i in 0..n {
                req_tx.send(i).unwrap();
                acc += rep_rx.recv().unwrap();
            }
            acc
        });
        for _ in 0..n {
            let v = req_rx.recv().unwrap();
            rep_tx.send(v + 1).unwrap();
        }
        assert_eq!(worker.join().unwrap(), (0..n).map(|i| i + 1).sum());

        // Re-probe from the environment for any later test.
        FORCE_SPIN.store(0, Ordering::Relaxed);
    }

    #[test]
    fn force_spin_off_defers_to_core_count() {
        let _g = PROBE_LOCK.lock().unwrap();
        FORCE_SPIN.store(2, Ordering::Relaxed);
        let expected = if std::thread::available_parallelism().map_or(1, |p| p.get()) > 1 {
            configured_spin_rounds()
        } else {
            0
        };
        assert_eq!(spin_rounds(), expected);
        FORCE_SPIN.store(0, Ordering::Relaxed);
    }

    #[test]
    fn spin_rounds_setting_is_validated() {
        // Valid: plain integers within the cap, surrounding whitespace.
        assert_eq!(parse_spin_rounds("0"), Some(0));
        assert_eq!(parse_spin_rounds("128"), Some(128));
        assert_eq!(parse_spin_rounds(" 4096 "), Some(4096));
        assert_eq!(
            parse_spin_rounds(&SPIN_ROUNDS_MAX.to_string()),
            Some(SPIN_ROUNDS_MAX)
        );
        // Invalid: junk, negatives, floats, and values beyond the cap
        // (which would only burn the peer's CPU budget).
        for bad in ["", "abc", "-1", "12.5", "1e4", "0x80"] {
            assert_eq!(parse_spin_rounds(bad), None, "{bad:?} must be rejected");
        }
        assert_eq!(
            parse_spin_rounds(&(SPIN_ROUNDS_MAX as u64 + 1).to_string()),
            None
        );
        assert_eq!(parse_spin_rounds(&u64::MAX.to_string()), None);
    }

    #[test]
    fn spin_rounds_override_feeds_the_recv_spin_phase() {
        let _g = PROBE_LOCK.lock().unwrap();
        // Arm a cached override as if LR_SPIN_ROUNDS=7 had been read,
        // and force the spin phase on so the single-core probe cannot
        // mask it.
        SPIN_OVERRIDE.store(7, Ordering::Relaxed);
        FORCE_SPIN.store(1, Ordering::Relaxed);
        assert_eq!(configured_spin_rounds(), 7);
        assert_eq!(spin_rounds(), 7);
        // Zero disables the pure-spin phase entirely.
        SPIN_OVERRIDE.store(0, Ordering::Relaxed);
        assert_eq!(spin_rounds(), 0);

        // Handoffs still work with the spin phase disabled (recv falls
        // straight through to the yield/park phases).
        let (tx, mut rx) = slot::<u64>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(9).unwrap();
        assert_eq!(h.join().unwrap(), Ok(9));

        // Restore the unprobed state for other tests.
        SPIN_OVERRIDE.store(u32::MAX, Ordering::Relaxed);
        FORCE_SPIN.store(0, Ordering::Relaxed);
    }
}
