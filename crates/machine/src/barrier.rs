//! A sense-reversing barrier on simulated memory.
//!
//! Used by iterative applications (Pagerank) exactly like a pthread
//! barrier would be in the paper's CRONO workloads. Spin-waiters hold the
//! sense word in Shared state and burn no coherence traffic until the
//! last arriver's store invalidates them.

use crate::ctx::ThreadCtx;
use lr_sim_core::Addr;
use lr_sim_mem::SimMemory;

/// Per-thread handle to a shared barrier.
///
/// Each participating thread gets its own copy (it tracks the thread's
/// local sense), all created from the same [`SimBarrier::init`] result.
#[derive(Debug, Clone, Copy)]
pub struct SimBarrier {
    count: Addr,
    sense: Addr,
    n: u64,
    local_sense: bool,
}

impl SimBarrier {
    /// Allocate a barrier for `n` threads in simulated memory. The two
    /// words live on distinct cache lines (false-sharing safety).
    pub fn init(mem: &mut SimMemory, n: usize) -> Self {
        assert!(n >= 1);
        let count = mem.alloc_line_aligned(8);
        let sense = mem.alloc_line_aligned(8);
        SimBarrier {
            count,
            sense,
            n: n as u64,
            local_sense: false,
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> u64 {
        self.n
    }

    /// Block (in simulated time) until all `n` threads have arrived.
    pub fn wait(&mut self, ctx: &mut ThreadCtx) {
        ctx.note_barrier();
        let my = !self.local_sense;
        self.local_sense = my;
        let arrived = ctx.faa(self.count, 1);
        if arrived == self.n - 1 {
            ctx.write(self.count, 0);
            ctx.write(self.sense, my as u64);
        } else {
            while ctx.read(self.sense) != my as u64 {
                // Spin locally on the Shared copy; re-probe after a pause.
                ctx.work(20);
            }
        }
    }
}
