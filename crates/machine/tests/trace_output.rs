//! `Machine::with_trace_output` file-naming tests: concurrent runs that
//! share a directory (the `--jobs N` sweep case) must never silently
//! overwrite each other's traces, and every written file must decode.

use lr_machine::{Machine, SystemConfig, ThreadFn};
use lr_sim_core::tracefmt;
use std::path::PathBuf;

/// Fresh scratch directory unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lr-machine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == tracefmt::TRACE_EXT))
        .collect();
    v.sort();
    v
}

fn recording_run(dir: &std::path::Path, label: &str) {
    let mut m =
        Machine::new(SystemConfig::with_cores(2)).with_trace_output(dir.to_path_buf(), label);
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = (0..2)
        .map(|_| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                for _ in 0..4 {
                    ctx.faa(a, 1);
                    ctx.count_op();
                }
            }) as ThreadFn
        })
        .collect();
    m.run(progs);
}

#[test]
fn concurrent_identical_cells_never_overwrite_a_trace() {
    // Four identical "sweep cells" (same label, same config fingerprint)
    // record into one directory at once — exactly the jobs-4 collision
    // scenario. Every run must land in its own file.
    let dir = scratch("jobs4");
    let jobs = 4;
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| recording_run(&dir, "cell.lr.t2"));
        }
    });
    let files = trace_files(&dir);
    assert_eq!(
        files.len(),
        jobs,
        "expected {jobs} distinct trace files, got {files:?}"
    );
    for f in &files {
        let bytes = std::fs::read(f).unwrap();
        let t = tracefmt::decode(&bytes).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        assert_eq!(t.cores.len(), 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_runs_extend_rather_than_replace() {
    let dir = scratch("rerun");
    recording_run(&dir, "cell");
    recording_run(&dir, "cell");
    recording_run(&dir, "cell");
    let files = trace_files(&dir);
    assert_eq!(files.len(), 3, "got {files:?}");
    // First file takes the bare name; later ones get -2, -3 suffixes.
    let names: Vec<String> = files
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().any(|n| !n.contains('-')), "{names:?}");
    assert!(names
        .iter()
        .any(|n| n.ends_with(&format!("-2.{}", tracefmt::TRACE_EXT))));
    assert!(names
        .iter()
        .any(|n| n.ends_with(&format!("-3.{}", tracefmt::TRACE_EXT))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_labels_are_sanitized() {
    let dir = scratch("label");
    recording_run(&dir, "a/b c:d");
    let files = trace_files(&dir);
    assert_eq!(files.len(), 1, "got {files:?}");
    let name = files[0].file_name().unwrap().to_string_lossy().into_owned();
    assert!(name.starts_with("a-b-c-d_"), "{name}");
    let _ = std::fs::remove_dir_all(&dir);
}
