use lr_machine::{Machine, SystemConfig, ThreadFn};

#[test]
fn two_threads_one_multilease_each() {
    let mut m = Machine::new(SystemConfig::with_cores(2));
    let (a, b) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    let progs: Vec<ThreadFn> = (0..2)
        .map(|_| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                assert!(ctx.multi_lease(&[a, b], 5_000));
                let va = ctx.read(a);
                ctx.write(a, va + 1);
                ctx.release(a);
            }) as ThreadFn
        })
        .collect();
    m.run(progs);
}

#[test]
fn four_threads_iterated_multilease() {
    let mut m = Machine::new(SystemConfig::with_cores(4));
    let (a, b) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    for iters in 1..=20u64 {
        let mut m2 = Machine::new(SystemConfig::with_cores(4));
        let (a2, b2) = m2.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
        let progs: Vec<ThreadFn> = (0..4)
            .map(|_| {
                Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                    for _ in 0..iters {
                        assert!(ctx.multi_lease(&[a2, b2], ctx.max_lease_time()));
                        let va = ctx.read(a2);
                        let vb = ctx.read(b2);
                        ctx.write(a2, va.wrapping_add(1));
                        ctx.write(b2, vb.wrapping_sub(1));
                        ctx.release(a2);
                    }
                }) as ThreadFn
            })
            .collect();
        eprintln!("iters={iters}");
        m2.run(progs);
    }
    let _ = (a, b, m);
}
