//! Full-machine behavioural tests: data correctness, lease semantics,
//! determinism, and timing sanity on the simulated multicore.

use lr_machine::{Machine, SimBarrier, SystemConfig, ThreadFn};
use lr_sim_core::Addr;

fn cfg(cores: usize) -> SystemConfig {
    SystemConfig::with_cores(cores)
}

#[test]
fn single_thread_read_write() {
    let mut m = Machine::new(cfg(2));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let stats = m.run(vec![Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
        assert_eq!(ctx.read(a), 0);
        ctx.write(a, 42);
        assert_eq!(ctx.read(a), 42);
        ctx.count_op();
    }) as ThreadFn]);
    assert_eq!(stats.app_ops, 1);
    assert!(stats.total_cycles > 0);
    // First read misses (fill in S), the write upgrades (a second miss),
    // and the final read hits on the M copy.
    assert_eq!(stats.cores[0].l1_hits, 1);
    assert_eq!(stats.cores[0].l1_misses, 2);
}

#[test]
fn faa_from_many_threads_sums() {
    let n = 8;
    let per = 50;
    let mut m = Machine::new(cfg(n));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = (0..n)
        .map(|_| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                for _ in 0..per {
                    ctx.faa(a, 1);
                    ctx.count_op();
                }
            }) as ThreadFn
        })
        .collect();
    let stats = m.run(progs);
    assert_eq!(stats.app_ops, (n * per) as u64);

    // Verify the final value with a fresh single-thread run reading it —
    // simpler: rerun machine? Instead check via stats invariant: every FAA
    // is an rmw.
    let t = stats.core_totals();
    assert_eq!(t.rmw_ops, (n * per) as u64);
}

#[test]
fn final_memory_value_is_visible() {
    let n = 4;
    let per = 25u64;
    let mut m = Machine::new(cfg(n));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let done = std::sync::Arc::new(std::sync::Mutex::new(0u64));
    let mut progs: Vec<ThreadFn> = Vec::new();
    for tid in 0..n {
        let done = done.clone();
        progs.push(Box::new(move |ctx| {
            for _ in 0..per {
                ctx.faa(a, 1);
            }
            if tid == 0 {
                // Busy-wait until all increments are visible.
                loop {
                    let v = ctx.read(a);
                    if v == per * n as u64 {
                        *done.lock().unwrap() = v;
                        break;
                    }
                    ctx.work(100);
                }
            }
        }));
    }
    m.run(progs);
    assert_eq!(*done.lock().unwrap(), per * n as u64);
}

#[test]
fn cas_contention_is_linearizable() {
    // Counter via CAS loops: total must equal ops even under failures.
    let n = 8;
    let per = 30u64;
    let mut m = Machine::new(cfg(n));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let final_val = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut progs: Vec<ThreadFn> = Vec::new();
    for tid in 0..n {
        let final_val = final_val.clone();
        progs.push(Box::new(move |ctx| {
            for _ in 0..per {
                loop {
                    let v = ctx.read(a);
                    if ctx.cas(a, v, v + 1) {
                        break;
                    }
                }
            }
            if tid == 0 {
                loop {
                    let v = ctx.read(a);
                    if v == per * 8 {
                        final_val.store(v, std::sync::atomic::Ordering::Relaxed);
                        break;
                    }
                    ctx.work(200);
                }
            }
        }));
    }
    let stats = m.run(progs);
    assert_eq!(
        final_val.load(std::sync::atomic::Ordering::Relaxed),
        per * n as u64
    );
    let t = stats.core_totals();
    assert_eq!(t.cas_attempts - t.cas_failures, per * n as u64);
    // With 8 threads hammering one line there must be some CAS failures.
    assert!(
        t.cas_failures > 0,
        "expected contention-induced CAS failures"
    );
}

#[test]
fn lease_protects_read_cas_window() {
    // With leases on the contended line, CAS failures should (nearly)
    // vanish: that is the paper's core claim (Figure 1/2).
    let n = 8;
    let per = 30u64;
    let mut m = Machine::new(cfg(n));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = (0..n)
        .map(|_| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                for _ in 0..per {
                    loop {
                        ctx.lease_max(a);
                        let v = ctx.read(a);
                        let ok = ctx.cas(a, v, v + 1);
                        ctx.release(a);
                        if ok {
                            break;
                        }
                    }
                }
            }) as ThreadFn
        })
        .collect();
    let stats = m.run(progs);
    let t = stats.core_totals();
    assert_eq!(t.cas_attempts, per * n as u64, "no retries expected");
    assert_eq!(t.cas_failures, 0, "leases must make the read-CAS atomic");
    assert_eq!(t.leases_taken, per * n as u64);
    assert_eq!(t.releases_voluntary, per * n as u64);
    assert_eq!(t.releases_involuntary, 0);
    // Probes were queued behind leases.
    assert!(t.probes_queued > 0);
}

#[test]
fn unreleased_lease_expires_involuntarily() {
    let mut m = Machine::new(cfg(2));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = vec![
        Box::new(move |ctx| {
            ctx.lease(a, 2_000);
            ctx.write(a, 1);
            // Forget to release; spin long past expiry.
            ctx.work(10_000);
        }),
        Box::new(move |ctx| {
            ctx.work(100); // let thread 0 take the lease first
                           // This read stalls behind the lease until it expires.
            let v = ctx.read(a);
            assert_eq!(v, 1);
        }),
    ];
    let stats = m.run(progs);
    let t = stats.core_totals();
    assert_eq!(t.releases_involuntary, 1);
    assert_eq!(t.releases_voluntary, 0);
    assert_eq!(t.probes_queued, 1);
    assert!(t.probe_queued_cycles > 500, "probe should have waited");
}

#[test]
fn release_returns_voluntary_flag() {
    let mut m = Machine::new(cfg(2));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
        ctx.lease(a, 1_000);
        ctx.write(a, 7);
        assert!(ctx.release(a), "in-time release is voluntary");
        ctx.lease(a, 50);
        ctx.work(5_000); // outlive the lease
        assert!(
            !ctx.release(a),
            "expired lease: release reports involuntary"
        );
    })];
    let stats = m.run(progs);
    let t = stats.core_totals();
    assert_eq!(t.releases_voluntary, 1);
    assert_eq!(t.releases_involuntary, 1);
}

#[test]
fn multi_lease_holds_two_lines_jointly() {
    let n = 4;
    let per = 20u64;
    let mut m = Machine::new(cfg(n));
    let (a, b) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    // Transfer workload: move 1 from a to b atomically under multilease;
    // the sum a+b must always read 0 modulo in-flight transfers.
    let progs: Vec<ThreadFn> = (0..n)
        .map(|_| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                for _ in 0..per {
                    assert!(ctx.multi_lease(&[a, b], ctx.max_lease_time()));
                    let va = ctx.read(a);
                    let vb = ctx.read(b);
                    ctx.write(a, va.wrapping_add(1));
                    ctx.write(b, vb.wrapping_sub(1));
                    ctx.release(a); // releases the whole group
                    ctx.count_op();
                }
            }) as ThreadFn
        })
        .collect();
    let stats = m.run(progs);
    let t = stats.core_totals();
    assert_eq!(stats.app_ops, per * n as u64);
    assert_eq!(t.multileases, per * n as u64);
    assert_eq!(t.releases_involuntary, 0, "joint holding must succeed");
}

#[test]
fn multi_lease_over_capacity_is_rejected() {
    let mut config = cfg(2);
    config.lease.max_num_leases = 2;
    let mut m = Machine::new(config);
    let addrs = m.setup(|mem| {
        (0..3)
            .map(|_| mem.alloc_line_aligned(8))
            .collect::<Vec<Addr>>()
    });
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
        assert!(!ctx.multi_lease(&addrs, 1000), "3 > MAX_NUM_LEASES = 2");
        // Still works with 2 lines.
        assert!(ctx.multi_lease(&addrs[..2], 1000));
        ctx.release_all();
    })];
    m.run(progs);
}

#[test]
fn software_multi_lease_works() {
    let n = 4;
    let per = 15u64;
    let mut m = Machine::new(cfg(n));
    let (a, b) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    let progs: Vec<ThreadFn> = (0..n)
        .map(|_| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                for _ in 0..per {
                    ctx.software_multi_lease(&[a, b], 2_000);
                    let va = ctx.read(a);
                    ctx.write(b, va + 1);
                    ctx.write(a, va + 1);
                    ctx.software_release_all(&[a, b]);
                    ctx.count_op();
                }
            }) as ThreadFn
        })
        .collect();
    let stats = m.run(progs);
    assert_eq!(stats.app_ops, per * n as u64);
}

#[test]
fn snapshot_is_consistent_under_writers() {
    let mut m = Machine::new(cfg(4));
    let (a, b) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    let snaps = std::sync::Arc::new(std::sync::Mutex::new(Vec::<Vec<u64>>::new()));
    let mut progs: Vec<ThreadFn> = Vec::new();
    // Writers keep a == b at all times (update under multilease).
    for _ in 0..2 {
        progs.push(Box::new(move |ctx| {
            for i in 0..30u64 {
                ctx.multi_lease(&[a, b], ctx.max_lease_time());
                ctx.write(a, i);
                ctx.write(b, i);
                ctx.release(a);
            }
        }));
    }
    // Snapshotter: every successful snapshot must see a == b.
    let s2 = snaps.clone();
    progs.push(Box::new(move |ctx| {
        let mut got = 0;
        while got < 10 {
            if let Some(vals) = ctx.snapshot(&[a, b], 5_000) {
                assert_eq!(vals[0], vals[1], "snapshot tore: {vals:?}");
                s2.lock().unwrap().push(vals);
                got += 1;
            }
            ctx.work(200);
        }
    }));
    m.run(progs);
    assert_eq!(snaps.lock().unwrap().len(), 10);
}

#[test]
fn barrier_synchronizes_phases() {
    let n = 6;
    let mut m = Machine::new(cfg(n));
    let (bar, flags) = m.setup(|mem| {
        let bar = SimBarrier::init(mem, n);
        let flags: Vec<Addr> = (0..n).map(|_| mem.alloc_line_aligned(8)).collect();
        (bar, flags)
    });
    let progs: Vec<ThreadFn> = (0..n)
        .map(|tid| {
            let flags = flags.clone();
            let mut bar = bar;
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                // Phase 1: set my flag.
                ctx.write(flags[tid], 1);
                bar.wait(ctx);
                // Phase 2: everyone's flag must be visible.
                for &f in &flags {
                    assert_eq!(ctx.read(f), 1, "barrier did not separate phases");
                }
                bar.wait(ctx);
            }) as ThreadFn
        })
        .collect();
    m.run(progs);
}

#[test]
fn deterministic_same_seed_same_stats() {
    let run = || {
        let mut m = Machine::new(cfg(8));
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let progs: Vec<ThreadFn> = (0..8)
            .map(|_| {
                Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                    for _ in 0..40 {
                        loop {
                            let v = ctx.read(a);
                            if ctx.cas(a, v, v + 1) {
                                break;
                            }
                        }
                        let spin = ctx.rng().next_u64() % 64;
                        ctx.work(spin);
                    }
                }) as ThreadFn
            })
            .collect();
        m.run(progs).summary()
    };
    let _ = &run; // silence unused-trait-import pattern
    assert_eq!(run(), run(), "same seed must give identical statistics");
}

#[test]
fn work_advances_time_without_traffic() {
    let mut m = Machine::new(cfg(1));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
        ctx.read(a);
        let t0 = ctx.now();
        ctx.work(1234);
        assert_eq!(ctx.now(), t0 + 1234);
        ctx.read(a);
    })];
    let stats = m.run(progs);
    assert_eq!(stats.cores[0].l1_misses, 1);
    assert!(stats.total_cycles >= 1234);
}

#[test]
#[should_panic(expected = "panicked inside the simulation")]
fn worker_panic_is_propagated() {
    let mut m = Machine::new(cfg(2));
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
        ctx.read(a);
        panic!("workload bug");
    })];
    m.run(progs);
}

#[test]
fn worker_panic_while_holding_lease_reports_coherently() {
    // Thread 0 panics while holding a lease that thread 1 is queued
    // behind: the engine must tear the run down (no hang on the parked
    // rendezvous slots) and raise one coherent failure report naming
    // the panicking thread, with the protocol state attached.
    let mut m = Machine::new(cfg(2)).with_trace(64);
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = vec![
        Box::new(move |ctx| {
            ctx.lease(a, 20_000);
            ctx.write(a, 1);
            panic!("workload bug under lease");
        }),
        Box::new(move |ctx| {
            ctx.work(200); // queue behind thread 0's lease
            ctx.write(a, 2);
            ctx.work(50_000);
        }),
    ];
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run(progs)))
        .expect_err("worker panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("report is a String payload");
    assert!(msg.contains("panicked inside the simulation"), "{msg}");
    assert!(msg.contains("[0]"), "report must name thread 0: {msg}");
    assert!(msg.contains("simulation failure report"), "{msg}");
    assert!(msg.contains("-- lease tables --"), "{msg}");
}

#[test]
fn prioritization_lets_regular_requests_break_leases() {
    // Thread 0 camps on a lease and never releases; thread 1 issues a
    // plain (regular) store. With prioritization ON the store must
    // complete long before the 20K-cycle lease would expire.
    let run = |prioritization: bool| {
        let mut config = cfg(2);
        config.lease.prioritization = prioritization;
        let mut m = Machine::new(config);
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let when = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let when2 = when.clone();
        let progs: Vec<ThreadFn> = vec![
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                ctx.lease(a, 20_000);
                ctx.write(a, 1);
                ctx.work(30_000); // camp past the other thread's store
            }),
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                ctx.work(200); // let thread 0 take the lease
                ctx.write(a, 2);
                when2.store(ctx.now(), std::sync::atomic::Ordering::Relaxed);
            }),
        ];
        let stats = m.run(progs);
        (
            when.load(std::sync::atomic::Ordering::Relaxed),
            stats.core_totals().leases_broken_by_priority,
        )
    };
    let (t_off, broken_off) = run(false);
    let (t_on, broken_on) = run(true);
    assert_eq!(broken_off, 0);
    assert!(broken_on >= 1, "regular store must break the lease");
    assert!(
        t_on < 2_000 && t_off > 15_000,
        "prioritization should complete the store early: on={t_on} off={t_off}"
    );
}

#[test]
fn mesi_machine_run_matches_msi_semantics() {
    // The same contended workload on MSI and MESI must produce the same
    // data results; MESI may only change timing/traffic.
    let run = |protocol: lr_sim_core::CoherenceProtocol| {
        let mut config = cfg(4);
        config.protocol = protocol;
        let mut m = Machine::new(config);
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let progs: Vec<ThreadFn> = (0..4)
            .map(|_| {
                Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                    for _ in 0..30 {
                        loop {
                            ctx.lease_max(a);
                            let v = ctx.read(a);
                            let ok = ctx.cas(a, v, v + 1);
                            ctx.release(a);
                            if ok {
                                break;
                            }
                        }
                    }
                }) as ThreadFn
            })
            .collect();
        let (stats, mem) = m.run_with_memory(progs);
        (mem.read_word(a), stats.core_totals().cas_failures)
    };
    let (v_msi, fail_msi) = run(lr_sim_core::CoherenceProtocol::Msi);
    let (v_mesi, fail_mesi) = run(lr_sim_core::CoherenceProtocol::Mesi);
    assert_eq!(v_msi, 120);
    assert_eq!(v_mesi, 120);
    assert_eq!(fail_msi, 0);
    assert_eq!(fail_mesi, 0);
}

#[test]
fn mesi_avoids_upgrade_misses_single_thread() {
    let run = |protocol: lr_sim_core::CoherenceProtocol| {
        let mut config = cfg(1);
        config.protocol = protocol;
        let mut m = Machine::new(config);
        let cells: Vec<Addr> = m.setup(|mem| (0..16).map(|_| mem.alloc_line_aligned(8)).collect());
        let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
            // Read-then-write every cell: MSI pays an upgrade per cell,
            // MESI does not.
            for &c in &cells {
                let v = ctx.read(c);
                ctx.write(c, v + 1);
            }
        })];
        let stats = m.run(progs);
        stats.cores[0].l1_misses
    };
    let msi = run(lr_sim_core::CoherenceProtocol::Msi);
    let mesi = run(lr_sim_core::CoherenceProtocol::Mesi);
    assert_eq!(msi, 32, "MSI: one fill + one upgrade per cell");
    assert_eq!(mesi, 16, "MESI: the E grant absorbs the upgrade");
}

#[test]
fn malloc_and_free_roundtrip() {
    let m = Machine::new(cfg(1));
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
        let p = ctx.malloc_line(16);
        assert!(!p.is_null());
        assert_eq!(p.line_offset(), 0);
        ctx.write(p, 5);
        ctx.write(p.offset(8), 6);
        assert_eq!(ctx.read(p), 5);
        assert_eq!(ctx.read(p.offset(8)), 6);
        ctx.free(p);
        let q = ctx.malloc_line(16);
        assert_eq!(ctx.read(q), 0, "recycled memory must be zeroed");
    })];
    m.run(progs);
}

#[test]
fn watchdog_trip_emits_structured_failure_report() {
    // A livelocked program trips the cycle watchdog; instead of a bare
    // panic the machine must emit one coherent report: the trace window,
    // the coherence engine's in-flight dump, and every lease table.
    let mut config = cfg(2);
    config.watchdog_max_cycles = 20_000;
    let mut m = Machine::new(config).with_trace(64);
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx| {
        // Hold a lease (so the report has lease-table content) and spin
        // past the watchdog limit.
        ctx.lease(a, 1_000_000);
        loop {
            ctx.read(a);
            ctx.work(100);
        }
    })];
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run(progs)))
        .expect_err("watchdog must trip");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("report is a String payload");
    assert!(msg.contains("simulation failure report"), "{msg}");
    assert!(msg.contains("watchdog"), "{msg}");
    assert!(msg.contains("-- trace window --"), "{msg}");
    assert!(msg.contains("-- in-flight protocol state --"), "{msg}");
    assert!(msg.contains("-- lease tables --"), "{msg}");
    assert!(msg.contains("-- pending ops --"), "{msg}");
    // The trace window actually captured protocol events.
    assert!(
        msg.contains("GrantArrive") || msg.contains("OpStart"),
        "{msg}"
    );
}

#[test]
fn trace_ring_buffer_does_not_perturb_results() {
    let run = |depth: usize| {
        let mut m = Machine::new(cfg(4)).with_trace(depth);
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let progs: Vec<ThreadFn> = (0..4)
            .map(|_| {
                Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                    for _ in 0..20 {
                        ctx.faa(a, 1);
                    }
                }) as ThreadFn
            })
            .collect();
        m.run(progs).summary()
    };
    // Tracing is observability only: identical statistics with and
    // without it.
    assert_eq!(run(0), run(64));
}

/// Single-socket degeneracy at the machine level: with `sockets == 1`
/// the multi-socket machinery must be completely invisible — the
/// socket-link knobs (latency, energy rate) cannot perturb one byte of
/// the stats JSON, no cross-socket counter appears in it, and turning
/// the knobs only matters once a second socket exists.
#[test]
fn single_socket_stats_ignore_socket_knobs() {
    let run = |sockets: usize, link: u64, nj: f64| {
        let mut c = cfg(8);
        c.sockets = sockets;
        c.socket_link_latency = link;
        c.energy.socket_flit_hop_nj = nj;
        let mut m = Machine::new(c);
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let progs: Vec<ThreadFn> = (0..8)
            .map(|_| {
                Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                    for _ in 0..25 {
                        ctx.faa(a, 1);
                        ctx.count_op();
                    }
                }) as ThreadFn
            })
            .collect();
        m.run(progs)
    };
    let base = run(1, 40, 0.2);
    let cranked = run(1, 4_000, 99.0);
    assert_eq!(
        base.to_json(),
        cranked.to_json(),
        "socket knobs leaked into a single-socket run"
    );
    assert_eq!(base.cross_socket_msgs, 0);
    assert!(
        !base.to_json().contains("cross_socket"),
        "sockets=1 JSON must keep the pre-NUMA byte layout"
    );
    // The same knobs are very much visible once a second socket exists:
    // the contended line's traffic crosses the link, the counter shows
    // up in the JSON, and the slower link stretches the run.
    let two = run(2, 40, 0.2);
    assert!(two.cross_socket_msgs > 0);
    assert!(two.to_json().contains("cross_socket_msgs"));
    let slow = run(2, 4_000, 0.2);
    assert!(
        slow.total_cycles > two.total_cycles,
        "a 100x slower socket link must stretch a cross-socket run"
    );
    // (Message *counts* may shift with the interleaving; only the
    // latency signature is asserted.)
}
