//! Partitioned-engine determinism: the same workload run under 1, 2,
//! and 4 engine partitions must produce byte-identical results — same
//! stats JSON, same recorded trace bytes, same event count, same final
//! memory. The partition count selects the executor (single loop vs
//! one host thread per partition); it must never select the outcome.

use lr_machine::{CommitMode, Machine, SystemConfig, ThreadFn};
use lr_sim_core::tracefmt;

/// A contended lease/CAS counter plus FAA side traffic across 8 cores:
/// exercises grants, probes, stalls, expiries, and cross-tile traffic.
fn programs(n: usize, a: lr_sim_core::Addr, b: lr_sim_core::Addr) -> Vec<ThreadFn> {
    (0..n)
        .map(|tid| {
            Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                for i in 0..40 {
                    if tid % 2 == 0 {
                        loop {
                            ctx.lease_max(a);
                            let v = ctx.read(a);
                            let ok = ctx.cas(a, v, v + 1);
                            ctx.release(a);
                            if ok {
                                break;
                            }
                        }
                    } else {
                        ctx.faa(a, 1);
                    }
                    ctx.faa(b, tid as u64 + i);
                    ctx.count_op();
                }
            }) as ThreadFn
        })
        .collect()
}

fn recorded_run(shards: usize) -> (String, Vec<u8>, u64, u64, u64) {
    let mut m = Machine::new(SystemConfig::with_cores(8))
        .with_engine_shards(shards)
        .with_trace(32);
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let b = m.setup(|mem| mem.alloc_line_aligned(8));
    let run = m.run_recorded(programs(8, a, b));
    let mem_a = run.mem.read_word(a);
    let mem_b = run.mem.read_word(b);
    (
        run.stats.to_json(),
        tracefmt::encode(&run.trace),
        run.events,
        mem_a,
        mem_b,
    )
}

#[test]
fn shard_counts_1_2_4_are_byte_identical() {
    let base = recorded_run(1);
    for shards in [2usize, 4] {
        let got = recorded_run(shards);
        assert_eq!(got.0, base.0, "stats JSON diverged at {shards} shards");
        assert_eq!(
            got.1, base.1,
            "recorded trace bytes diverged at {shards} shards"
        );
        assert_eq!(got.2, base.2, "event count diverged at {shards} shards");
        assert_eq!(got.3, base.3, "final memory diverged at {shards} shards");
        assert_eq!(got.4, base.4, "final memory diverged at {shards} shards");
    }
}

/// The commit mode selects the *schedule* (one event at a time vs
/// whole safe-window batches on concurrent host threads), never the
/// outcome: for every shard count, the relaxed executor's merged
/// statistics, event count, and final memory are byte-identical to the
/// sequential lockstep run. Tracing is off so the relaxed live
/// executor actually engages (live tracing forces lockstep).
#[test]
fn commit_modes_are_byte_identical_across_shard_counts() {
    let run = |shards: usize, commit: CommitMode| {
        let mut m = Machine::new(SystemConfig::with_cores(8))
            .with_engine_shards(shards)
            .with_commit_mode(commit);
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let b = m.setup(|mem| mem.alloc_line_aligned(8));
        let (stats, mem, info) = m.run_counted_info(programs(8, a, b));
        (
            stats.to_json(),
            info.events,
            mem.read_word(a),
            mem.read_word(b),
        )
    };
    let base = run(1, CommitMode::Lockstep);
    for shards in [1usize, 2, 4] {
        for commit in [CommitMode::Lockstep, CommitMode::Relaxed] {
            let got = run(shards, commit);
            assert_eq!(
                got.0, base.0,
                "stats JSON diverged at {shards} shards / {commit} commit"
            );
            assert_eq!(
                got.1, base.1,
                "event count diverged at {shards} shards / {commit} commit"
            );
            assert_eq!(
                (got.2, got.3),
                (base.2, base.3),
                "final memory diverged at {shards} shards / {commit} commit"
            );
        }
    }
}

/// The partitioned executor reports its shape without touching the
/// simulated statistics, and clamps absurd shard counts to the tile
/// count instead of failing.
#[test]
fn engine_info_reports_partition_shape_and_clamps() {
    let run = |shards: usize| {
        let mut m = Machine::new(SystemConfig::with_cores(4)).with_engine_shards(shards);
        let a = m.setup(|mem| mem.alloc_line_aligned(8));
        let progs: Vec<ThreadFn> = (0..4)
            .map(|_| {
                Box::new(move |ctx: &mut lr_machine::ThreadCtx| {
                    for _ in 0..10 {
                        ctx.faa(a, 1);
                        ctx.count_op();
                    }
                }) as ThreadFn
            })
            .collect();
        m.run_counted_info(progs)
    };
    let (stats1, _, info1) = run(1);
    let (stats64, _, info64) = run(64);
    assert_eq!(info1.shards, 1);
    assert_eq!(info1.cross_events, 0);
    // 64 requested partitions on 4 tiles clamp to 4.
    assert_eq!(info64.shards, 4);
    assert!(info64.lookahead >= 1);
    // Contended FAA traffic between distinct tiles must cross
    // partitions when every tile is its own partition.
    assert!(info64.cross_events > 0);
    assert!(info64.epochs > 0);
    assert_eq!(info1.events, info64.events);
    assert_eq!(stats1.to_json(), stats64.to_json());
}
