//! Property tests at the whole-machine level: memory semantics and
//! lease-pattern robustness under randomized programs.

use lr_machine::{Machine, SystemConfig, ThreadCtx, ThreadFn};
use lr_sim_core::Addr;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
enum SeqOp {
    Write { slot: u8, val: u64 },
    Read { slot: u8 },
    Cas { slot: u8, expected: u64, new: u64 },
    Faa { slot: u8, delta: u32 },
    Xchg { slot: u8, val: u64 },
}

fn seq_op() -> impl Strategy<Value = SeqOp> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(slot, val)| SeqOp::Write { slot, val }),
        any::<u8>().prop_map(|slot| SeqOp::Read { slot }),
        (any::<u8>(), 0u64..4, any::<u64>()).prop_map(|(slot, expected, new)| SeqOp::Cas {
            slot,
            expected,
            new
        }),
        (any::<u8>(), any::<u32>()).prop_map(|(slot, delta)| SeqOp::Faa { slot, delta }),
        (any::<u8>(), any::<u64>()).prop_map(|(slot, val)| SeqOp::Xchg { slot, val }),
    ]
}

proptest! {
    // Machine runs are comparatively slow; keep the case counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single simulated thread sees exactly the semantics of a plain
    /// array: the cache hierarchy and coherence protocol must be
    /// transparent to data values.
    #[test]
    fn single_thread_memory_is_an_array(ops in proptest::collection::vec(seq_op(), 1..60)) {
        let mut m = Machine::new(SystemConfig::with_cores(1));
        let slots: Vec<Addr> =
            m.setup(|mem| (0..8).map(|_| mem.alloc_line_aligned(8)).collect());
        let trace: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let trace2 = trace.clone();
        let ops2 = ops.clone();
        let slots2 = slots.clone();
        m.run(vec![Box::new(move |ctx: &mut ThreadCtx| {
            let mut out = Vec::new();
            for op in &ops2 {
                match *op {
                    SeqOp::Write { slot, val } => ctx.write(slots2[slot as usize % 8], val),
                    SeqOp::Read { slot } => out.push(ctx.read(slots2[slot as usize % 8])),
                    SeqOp::Cas { slot, expected, new } => {
                        let (_, old) = ctx.cas_val(slots2[slot as usize % 8], expected, new);
                        out.push(old);
                    }
                    SeqOp::Faa { slot, delta } => {
                        out.push(ctx.faa(slots2[slot as usize % 8], delta as u64))
                    }
                    SeqOp::Xchg { slot, val } => {
                        out.push(ctx.xchg(slots2[slot as usize % 8], val))
                    }
                }
            }
            trace2.lock().unwrap().extend(out);
        }) as ThreadFn]);

        // Reference interpretation.
        let mut model = [0u64; 8];
        let mut expected_out = Vec::new();
        for op in &ops {
            match *op {
                SeqOp::Write { slot, val } => model[slot as usize % 8] = val,
                SeqOp::Read { slot } => expected_out.push(model[slot as usize % 8]),
                SeqOp::Cas { slot, expected, new } => {
                    let s = slot as usize % 8;
                    expected_out.push(model[s]);
                    if model[s] == expected {
                        model[s] = new;
                    }
                }
                SeqOp::Faa { slot, delta } => {
                    let s = slot as usize % 8;
                    expected_out.push(model[s]);
                    model[s] = model[s].wrapping_add(delta as u64);
                }
                SeqOp::Xchg { slot, val } => {
                    let s = slot as usize % 8;
                    expected_out.push(model[s]);
                    model[s] = val;
                }
            }
        }
        prop_assert_eq!(&*trace.lock().unwrap(), &expected_out);
    }

    /// Concurrent increments with arbitrary per-thread lease decorations
    /// (lease or not, random durations, forgotten releases) never lose an
    /// update and never deadlock: leases are advisory.
    #[test]
    fn random_lease_patterns_preserve_counts(
        plans in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 1u64..3000, any::<bool>()), 5..25),
            2..5
        )
    ) {
        let threads = plans.len();
        let mut m = Machine::new(SystemConfig::with_cores(threads));
        let cell = m.setup(|mem| mem.alloc_line_aligned(8));
        let total: u64 = plans.iter().map(|p| p.len() as u64).sum();
        let progs: Vec<ThreadFn> = plans
            .into_iter()
            .map(|plan| {
                Box::new(move |ctx: &mut ThreadCtx| {
                    for (use_lease, dur, forget_release) in plan {
                        loop {
                            if use_lease {
                                ctx.lease(cell, dur);
                            }
                            let v = ctx.read(cell);
                            let ok = ctx.cas(cell, v, v + 1);
                            if use_lease && !forget_release {
                                ctx.release(cell);
                            }
                            if ok {
                                break;
                            }
                        }
                    }
                }) as ThreadFn
            })
            .collect();
        let (_, mem) = m.run_with_memory(progs);
        prop_assert_eq!(mem.read_word(cell), total);
    }

    /// Random MultiLease groups over a small set of lines, issued by
    /// several threads, complete without deadlock and keep per-line sums
    /// exact (Proposition 3, stress-tested).
    #[test]
    fn random_multilease_groups_terminate_and_are_atomic(
        plans in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0usize..5, 1..4), 3..12),
            2..5
        )
    ) {
        let threads = plans.len();
        let mut m = Machine::new(SystemConfig::with_cores(threads));
        let lines: Vec<Addr> =
            m.setup(|mem| (0..5).map(|_| mem.alloc_line_aligned(8)).collect());
        let mut expected = [0u64; 5];
        for plan in &plans {
            for group in plan {
                let mut seen = [false; 5];
                for &g in group {
                    if !seen[g] {
                        seen[g] = true;
                        expected[g] += 1;
                    }
                }
            }
        }
        let lines2 = lines.clone();
        let progs: Vec<ThreadFn> = plans
            .into_iter()
            .map(|plan| {
                let lines = lines2.clone();
                Box::new(move |ctx: &mut ThreadCtx| {
                    for group in plan {
                        let addrs: Vec<Addr> = group.iter().map(|&g| lines[g]).collect();
                        let admitted = ctx.multi_lease(&addrs, ctx.max_lease_time());
                        assert!(admitted, "groups of ≤4 fit MAX_NUM_LEASES");
                        // Increment every *distinct* member once.
                        let mut seen = [false; 5];
                        for (&g, &a) in group.iter().zip(&addrs) {
                            if !seen[g] {
                                seen[g] = true;
                                let v = ctx.read(a);
                                ctx.write(a, v + 1);
                            }
                        }
                        ctx.release_all();
                    }
                }) as ThreadFn
            })
            .collect();
        let (_, mem) = m.run_with_memory(progs);
        for (i, &line) in lines.iter().enumerate() {
            prop_assert_eq!(mem.read_word(line), expected[i], "line {} sum wrong", i);
        }
    }
}
