//! Randomized tests at the whole-machine level: memory semantics and
//! lease-pattern robustness under randomized programs, driven by the
//! in-tree [`SplitMix64`] generator.

use lr_machine::{Machine, SystemConfig, ThreadCtx, ThreadFn};
use lr_sim_core::{Addr, SplitMix64};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
enum SeqOp {
    Write { slot: u8, val: u64 },
    Read { slot: u8 },
    Cas { slot: u8, expected: u64, new: u64 },
    Faa { slot: u8, delta: u32 },
    Xchg { slot: u8, val: u64 },
}

fn random_seq_op(rng: &mut SplitMix64) -> SeqOp {
    let slot = (rng.next_u64() & 0xff) as u8;
    match rng.gen_range(0u8..5) {
        0 => SeqOp::Write {
            slot,
            val: rng.next_u64(),
        },
        1 => SeqOp::Read { slot },
        2 => SeqOp::Cas {
            slot,
            expected: rng.gen_range(0u64..4),
            new: rng.next_u64(),
        },
        3 => SeqOp::Faa {
            slot,
            delta: (rng.next_u64() & 0xffff_ffff) as u32,
        },
        _ => SeqOp::Xchg {
            slot,
            val: rng.next_u64(),
        },
    }
}

/// A single simulated thread sees exactly the semantics of a plain
/// array: the cache hierarchy and coherence protocol must be
/// transparent to data values.
#[test]
fn single_thread_memory_is_an_array() {
    // Machine runs are comparatively slow; keep the case counts modest.
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x3_ac41_0000 + case);
        let nops = rng.gen_range(1usize..60);
        let ops: Vec<SeqOp> = (0..nops).map(|_| random_seq_op(&mut rng)).collect();

        let mut m = Machine::new(SystemConfig::with_cores(1));
        let slots: Vec<Addr> = m.setup(|mem| (0..8).map(|_| mem.alloc_line_aligned(8)).collect());
        let trace: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let trace2 = trace.clone();
        let ops2 = ops.clone();
        let slots2 = slots.clone();
        m.run(vec![Box::new(move |ctx: &mut ThreadCtx| {
            let mut out = Vec::new();
            for op in &ops2 {
                match *op {
                    SeqOp::Write { slot, val } => ctx.write(slots2[slot as usize % 8], val),
                    SeqOp::Read { slot } => out.push(ctx.read(slots2[slot as usize % 8])),
                    SeqOp::Cas {
                        slot,
                        expected,
                        new,
                    } => {
                        let (_, old) = ctx.cas_val(slots2[slot as usize % 8], expected, new);
                        out.push(old);
                    }
                    SeqOp::Faa { slot, delta } => {
                        out.push(ctx.faa(slots2[slot as usize % 8], delta as u64))
                    }
                    SeqOp::Xchg { slot, val } => out.push(ctx.xchg(slots2[slot as usize % 8], val)),
                }
            }
            trace2.lock().unwrap().extend(out);
        }) as ThreadFn]);

        // Reference interpretation.
        let mut model = [0u64; 8];
        let mut expected_out = Vec::new();
        for op in &ops {
            match *op {
                SeqOp::Write { slot, val } => model[slot as usize % 8] = val,
                SeqOp::Read { slot } => expected_out.push(model[slot as usize % 8]),
                SeqOp::Cas {
                    slot,
                    expected,
                    new,
                } => {
                    let s = slot as usize % 8;
                    expected_out.push(model[s]);
                    if model[s] == expected {
                        model[s] = new;
                    }
                }
                SeqOp::Faa { slot, delta } => {
                    let s = slot as usize % 8;
                    expected_out.push(model[s]);
                    model[s] = model[s].wrapping_add(delta as u64);
                }
                SeqOp::Xchg { slot, val } => {
                    let s = slot as usize % 8;
                    expected_out.push(model[s]);
                    model[s] = val;
                }
            }
        }
        assert_eq!(&*trace.lock().unwrap(), &expected_out, "case {case}");
    }
}

/// Concurrent increments with arbitrary per-thread lease decorations
/// (lease or not, random durations, forgotten releases) never lose an
/// update and never deadlock: leases are advisory.
#[test]
fn random_lease_patterns_preserve_counts() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x3_ac41_1000 + case);
        let threads = rng.gen_range(2usize..5);
        let plans: Vec<Vec<(bool, u64, bool)>> = (0..threads)
            .map(|_| {
                let n = rng.gen_range(5usize..25);
                (0..n)
                    .map(|_| {
                        (
                            rng.gen_bool(0.5),
                            rng.gen_range(1u64..3000),
                            rng.gen_bool(0.5),
                        )
                    })
                    .collect()
            })
            .collect();

        let mut m = Machine::new(SystemConfig::with_cores(threads));
        let cell = m.setup(|mem| mem.alloc_line_aligned(8));
        let total: u64 = plans.iter().map(|p| p.len() as u64).sum();
        let progs: Vec<ThreadFn> = plans
            .into_iter()
            .map(|plan| {
                Box::new(move |ctx: &mut ThreadCtx| {
                    for (use_lease, dur, forget_release) in plan {
                        loop {
                            if use_lease {
                                ctx.lease(cell, dur);
                            }
                            let v = ctx.read(cell);
                            let ok = ctx.cas(cell, v, v + 1);
                            if use_lease && !forget_release {
                                ctx.release(cell);
                            }
                            if ok {
                                break;
                            }
                        }
                    }
                }) as ThreadFn
            })
            .collect();
        let (_, mem) = m.run_with_memory(progs);
        assert_eq!(mem.read_word(cell), total, "case {case}");
    }
}

/// Random MultiLease groups over a small set of lines, issued by
/// several threads, complete without deadlock and keep per-line sums
/// exact (Proposition 3, stress-tested).
#[test]
fn random_multilease_groups_terminate_and_are_atomic() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x3_ac41_2000 + case);
        let threads = rng.gen_range(2usize..5);
        let plans: Vec<Vec<Vec<usize>>> = (0..threads)
            .map(|_| {
                let n = rng.gen_range(3usize..12);
                (0..n)
                    .map(|_| {
                        let g = rng.gen_range(1usize..4);
                        (0..g).map(|_| rng.gen_range(0usize..5)).collect()
                    })
                    .collect()
            })
            .collect();

        let mut m = Machine::new(SystemConfig::with_cores(threads));
        let lines: Vec<Addr> = m.setup(|mem| (0..5).map(|_| mem.alloc_line_aligned(8)).collect());
        let mut expected = [0u64; 5];
        for plan in &plans {
            for group in plan {
                let mut seen = [false; 5];
                for &g in group {
                    if !seen[g] {
                        seen[g] = true;
                        expected[g] += 1;
                    }
                }
            }
        }
        let lines2 = lines.clone();
        let progs: Vec<ThreadFn> = plans
            .into_iter()
            .map(|plan| {
                let lines = lines2.clone();
                Box::new(move |ctx: &mut ThreadCtx| {
                    for group in plan {
                        let addrs: Vec<Addr> = group.iter().map(|&g| lines[g]).collect();
                        let admitted = ctx.multi_lease(&addrs, ctx.max_lease_time());
                        assert!(admitted, "groups of ≤4 fit MAX_NUM_LEASES");
                        // Increment every *distinct* member once.
                        let mut seen = [false; 5];
                        for (&g, &a) in group.iter().zip(&addrs) {
                            if !seen[g] {
                                seen[g] = true;
                                let v = ctx.read(a);
                                ctx.write(a, v + 1);
                            }
                        }
                        ctx.release_all();
                    }
                }) as ThreadFn
            })
            .collect();
        let (_, mem) = m.run_with_memory(progs);
        for (i, &line) in lines.iter().enumerate() {
            assert_eq!(
                mem.read_word(line),
                expected[i],
                "case {case}: line {i} sum wrong"
            );
        }
    }
}
