//! Steady-state allocation audit: once a simulation is warmed up (lines
//! resident, scratch buffers at their high-water capacity), the engine
//! loop must retire Read/Write/CAS/FAA instructions without touching
//! the heap. Guarded by comparing the *process-wide* allocation count
//! of a short run against a run 8x longer over the same working set:
//! the extra instructions must add exactly zero allocations.
//!
//! This file holds a single test on purpose — the counting allocator is
//! global, so a concurrently running test would perturb the count.

use lr_machine::{Machine, SystemConfig, ThreadCtx, ThreadFn};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

/// One fixed-shape run: a single worker mixing every fast-path
/// instruction over two private lines. Returns the allocations the
/// whole run performed (machine construction through join).
fn allocs_for(ops: u64) -> u64 {
    let mut m = Machine::new(SystemConfig::with_cores(2));
    let (a, b) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    let progs: Vec<ThreadFn> = vec![Box::new(move |ctx: &mut ThreadCtx| {
        for i in 0..ops {
            ctx.faa(a, 1);
            ctx.write(b, i);
            ctx.read(b);
            ctx.cas(a, i + 1, i + 1);
            ctx.count_op();
        }
    })];
    let before = ALLOCS.load(Ordering::Relaxed);
    let stats = m.run(progs);
    assert_eq!(stats.app_ops, ops);
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn hot_loop_makes_no_steady_state_allocations() {
    // Warm up the process itself (thread-spawn TLS, panic hooks, ...).
    allocs_for(16);
    let short = allocs_for(512);
    let long = allocs_for(512 * 8);
    assert_eq!(
        long, short,
        "engine loop allocated on the Read/Write/CAS/FAA fast path: \
         {short} allocs for 512 ops vs {long} for 4096"
    );
}
