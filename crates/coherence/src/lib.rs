//! # lr-coherence
//!
//! Directory-based MSI cache-coherence protocol engine for the simulated
//! tiled multicore (private L1, shared sliced inclusive L2, in-cache
//! directory), following the protocol assumptions of the Lease/Release
//! paper:
//!
//! * **Per-line FIFO request queues at the directory** (the paper's
//!   Assumption 1): requests for one line are serviced strictly in arrival
//!   order, and a request for line A is never queued behind a request for
//!   a different line B.
//! * **At most one request queued at a core** (Proposition 1): only the
//!   request currently being serviced by the directory can be forwarded to
//!   — and therefore delayed at — an owning core.
//! * **Probe interception hook**: when a forwarded probe reaches the
//!   exclusive owner, the engine consults [`CohContext::probe_action`];
//!   the `lr-lease` crate implements the lease-table logic behind it.
//!
//! The engine is event-driven: callers feed it [`CohEvent`]s popped from
//! their own time-ordered queue and provide a [`CohContext`] for scheduling
//! follow-up events, completion notification, and lease hooks.
//!
//! ## Message-passing handlers
//!
//! Every handler executes at exactly one tile (the event's delivery
//! tile, passed to [`CoherenceEngine::handle`]) and mutates only that
//! tile's slice of engine state — its L1, its L2/directory slice, its
//! channel table, its stats block. Any protocol step that needs to
//! touch a *different* tile is split off as a follow-on [`CohEvent`]
//! scheduled with a real NoC latency. This is what lets a partitioned
//! executor commit events of different tiles concurrently: there is no
//! hidden shared state between handlers, only messages. In debug (and
//! `strict-invariants`) builds every tile-slice access is checked
//! against the executing tile and panics on a violation.

mod engine;
#[cfg(test)]
mod tests_engine;

pub use engine::{CoherenceEngine, PendingProbe};

use lr_sim_core::{CoreId, Cycle, LineAddr, TraceEvent};

/// Permission a memory access needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Needs the line in at least Shared state.
    Load,
    /// Needs the line in Modified state (stores and read-modify-writes).
    Store,
    /// Read-modify-write; also needs Modified. Distinguished from `Store`
    /// only for statistics.
    Rmw,
}

impl AccessKind {
    /// Does this access require exclusive (M) permission?
    #[inline]
    pub fn needs_exclusive(self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

/// L1 line coherence state (absence from the cache = Invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1State {
    /// Shared, read-only.
    Shared,
    /// Exclusive and clean (MESI mode only): the sole copy; the first
    /// write promotes it to Modified silently.
    Exclusive,
    /// Modified, exclusive and dirty.
    Modified,
}

impl L1State {
    /// May this copy be written without a coherence transaction?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, L1State::Exclusive | L1State::Modified)
    }
}

/// A set of cores: the directory's sharer list. A fixed 1024-bit bitset
/// (`Copy`, 128 bytes), so directories scale to the multi-socket
/// configurations — the previous representation was a single `u64`
/// word, capping the machine at 64 cores.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CoreSet([u64; CoreSet::WORDS]);

impl CoreSet {
    const WORDS: usize = 16;
    /// Largest representable core count.
    pub const CAPACITY: usize = Self::WORDS * 64;
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet([0; Self::WORDS]);

    /// The singleton set `{c}`.
    #[inline]
    pub fn only(c: CoreId) -> CoreSet {
        Self::EMPTY.with(c)
    }

    /// The set whose low 64 members are given by `mask` (bit `i` ⇒ core
    /// `i`) — mirrors the old `u64` directory representation; used by
    /// tests that spell sharer sets as literals.
    pub fn from_mask(mask: u64) -> CoreSet {
        let mut s = Self::EMPTY;
        s.0[0] = mask;
        s
    }

    /// This set with `c` added.
    #[inline]
    #[must_use]
    pub fn with(mut self, c: CoreId) -> CoreSet {
        self.0[c.idx() / 64] |= 1 << (c.idx() % 64);
        self
    }

    /// This set with `c` removed.
    #[inline]
    #[must_use]
    pub fn without(mut self, c: CoreId) -> CoreSet {
        self.0[c.idx() / 64] &= !(1 << (c.idx() % 64));
        self
    }

    /// Is `c` a member?
    #[inline]
    pub fn contains(&self, c: CoreId) -> bool {
        self.0[c.idx() / 64] & (1 << (c.idx() % 64)) != 0
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Members in ascending core order (word-skipping, so iteration cost
    /// scales with membership, not capacity).
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        (0..Self::WORDS).flat_map(move |w| {
            let mut bits = self.0[w];
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(CoreId((w * 64 + b as usize) as u16))
                }
            })
        })
    }
}

impl std::fmt::Debug for CoreSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}", c.idx())?;
        }
        f.write_str("}")
    }
}

/// Directory knowledge about one line (stored in its home L2 slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No L1 holds the line; L2/DRAM data is current.
    Uncached,
    /// The set of cores holding the line in Shared state.
    Shared(CoreSet),
    /// One core holds the line in Modified state.
    Modified(CoreId),
}

/// An in-flight coherence transaction, carried *inside* the protocol
/// messages instead of living in a shared table: each tile only ever
/// sees the transactions whose messages are delivered to it, so no
/// cross-tile lookup structure is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xact {
    /// Unique id: `(requesting core << 48) | per-core issue counter`.
    /// Tile-local stamping keeps ids identical across executors.
    pub id: u64,
    /// Caller token handed back via [`CohContext::xact_completed`].
    pub token: u64,
    /// Requesting core.
    pub core: CoreId,
    /// Target line.
    pub line: LineAddr,
    /// Requested permission.
    pub kind: AccessKind,
    /// Was the access issued with lease intent (`exclusive_granted` fires
    /// on completion)?
    pub lease_intent: bool,
    /// Is this a "regular" (non-lease) request for §5 prioritization?
    pub regular: bool,
    /// MESI: the home granted E (sole clean copy) rather than S.
    pub grant_exclusive: bool,
    /// Cycle the request was enqueued in a directory channel (0 until
    /// it queues; used for `dir_queue_wait_cycles`).
    pub enq_time: Cycle,
}

/// Events the engine schedules on the caller's queue and expects back.
///
/// The `CoreId` returned alongside each variant via
/// [`CohContext::schedule`]'s `dest` parameter names the tile the event
/// is *delivered* to; [`CoherenceEngine::handle`] must be called with
/// that same tile. Requester/owner/home tiles are recoverable from the
/// payload, so the variants carry no redundant destination field except
/// where noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohEvent {
    /// A request message reached its home directory.
    DirArrive(Xact),
    /// A forwarded probe reached the exclusive owner (second field).
    ProbeArrive(Xact, CoreId),
    /// A forwarded probe found the owner without a copy (eviction raced
    /// the probe): bounced back to the home, which serves from its L2
    /// slice.
    ProbeMiss(Xact),
    /// Data/permission grant reached the requester.
    GrantArrive(Xact),
    /// The requester's completion ack reached the directory: the line's
    /// FIFO queue may start servicing its next request.
    DirUnlock(LineAddr),
    /// An invalidation reached a Shared-state holder (the delivery
    /// tile): drop the copy. Idempotent — the copy may already be gone.
    InvArrive { line: LineAddr },
    /// The owner's downgrade result reached the home directory: install
    /// the new directory state. Always arrives strictly before the same
    /// transaction's `DirUnlock` (see `engine.rs` for the latency
    /// argument), so the directory is current when the channel reopens.
    DirUpdate { line: LineAddr, dir: DirState },
    /// A victim writeback (M: data, E: clean-exclusive notice) reached
    /// the home. Applied only if the directory still names `from` as
    /// owner and no transaction is active on the line; otherwise the
    /// protocol has already moved on and the message is dropped.
    Writeback { line: LineAddr, from: CoreId },
    /// A Shared-state victim notice reached the home: clear `from`'s
    /// sharer bit (dropped if the directory no longer says Shared).
    SharerDrop { line: LineAddr, from: CoreId },
    /// An inclusive-L2 back-invalidation reached a copy holder (the
    /// delivery tile): drop the copy and any lease on it. Idempotent.
    BackInval { line: LineAddr },
}

/// What the lease layer tells the engine to do with a probe that reached
/// an exclusive owner (see `lr-lease`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeAction {
    /// No valid lease: service the probe immediately.
    Proceed,
    /// A lease was broken by a prioritized "regular" request (paper §5):
    /// service the probe immediately and unpin the line.
    ProceedBreakingLease,
    /// A valid lease holds: queue the probe at the owning core until the
    /// lease is released or expires.
    Queue,
}

/// Callbacks the engine needs from its embedder (the machine crate).
pub trait CohContext {
    /// Schedule `ev` to be handed back to the engine after `delay` cycles.
    ///
    /// `dest` is the tile where the event is *delivered*: the home tile
    /// for directory events, the owning core for probes, the requesting
    /// core for grants, the copy holder for invalidations. A partitioned
    /// executor routes the event to the partition owning that tile and
    /// must hand it back via [`CoherenceEngine::handle`] with the same
    /// tile; a single-queue embedder still must preserve `dest` for the
    /// `handle` call.
    fn schedule(&mut self, delay: Cycle, dest: CoreId, ev: CohEvent);

    /// A memory transaction issued with token `token` finished at `now`.
    fn xact_completed(&mut self, token: u64, now: Cycle);

    /// A probe reached exclusive owner `owner` for `line`: should it be
    /// serviced, serviced breaking the lease, or queued? `regular` is true
    /// for non-lease requests when prioritization is enabled (paper §5).
    fn probe_action(
        &mut self,
        owner: CoreId,
        line: LineAddr,
        regular: bool,
        now: Cycle,
    ) -> ProbeAction;

    /// Exclusive ownership of `line` was granted to `core` at `now` for a
    /// request that carried lease intent: the lease layer starts the
    /// countdown (and pins the line via [`CoherenceEngine::pin`]).
    fn exclusive_granted(&mut self, core: CoreId, line: LineAddr, now: Cycle);

    /// Every way of an L1 set is pinned (leased) and a fill needs room:
    /// the lease layer must force-release one of `pinned` and return it.
    /// Returning `None` aborts the simulation (it indicates a lease-table
    /// bug, since `MAX_NUM_LEASES` bounds pinned lines per core).
    fn pinned_victim(&mut self, core: CoreId, pinned: &[LineAddr], now: Cycle) -> Option<LineAddr>;

    /// `line` was forcibly removed from `core`'s L1 (inclusive-L2
    /// back-invalidation). The lease layer drops any lease state for it.
    fn line_invalidated(&mut self, core: CoreId, line: LineAddr, now: Cycle);

    /// Is structured tracing enabled? The engine checks this before
    /// constructing any [`TraceEvent`], so tracing is zero-cost when off.
    /// Defaults to `false` (standalone/test embedders need not care).
    fn tracing(&self) -> bool {
        false
    }

    /// Record a structured protocol event at simulated time `now`. Called
    /// only when [`CohContext::tracing`] returns `true`.
    fn trace(&mut self, now: Cycle, ev: TraceEvent) {
        let _ = (now, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_permissions() {
        assert!(!AccessKind::Load.needs_exclusive());
        assert!(AccessKind::Store.needs_exclusive());
        assert!(AccessKind::Rmw.needs_exclusive());
    }
}
