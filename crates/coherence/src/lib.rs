//! # lr-coherence
//!
//! Directory-based MSI cache-coherence protocol engine for the simulated
//! tiled multicore (private L1, shared sliced inclusive L2, in-cache
//! directory), following the protocol assumptions of the Lease/Release
//! paper:
//!
//! * **Per-line FIFO request queues at the directory** (the paper's
//!   Assumption 1): requests for one line are serviced strictly in arrival
//!   order, and a request for line A is never queued behind a request for
//!   a different line B.
//! * **At most one request queued at a core** (Proposition 1): only the
//!   request currently being serviced by the directory can be forwarded to
//!   — and therefore delayed at — an owning core.
//! * **Probe interception hook**: when a forwarded probe reaches the
//!   exclusive owner, the engine consults [`CohContext::probe_action`];
//!   the `lr-lease` crate implements the lease-table logic behind it.
//!
//! The engine is event-driven: callers feed it [`CohEvent`]s popped from
//! their own time-ordered queue and provide a [`CohContext`] for scheduling
//! follow-up events, completion notification, and lease hooks.

mod engine;
#[cfg(test)]
mod tests_engine;

pub use engine::{CoherenceEngine, PendingProbe};

use lr_sim_core::{CoreId, Cycle, LineAddr, TraceEvent};

/// Permission a memory access needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Needs the line in at least Shared state.
    Load,
    /// Needs the line in Modified state (stores and read-modify-writes).
    Store,
    /// Read-modify-write; also needs Modified. Distinguished from `Store`
    /// only for statistics.
    Rmw,
}

impl AccessKind {
    /// Does this access require exclusive (M) permission?
    #[inline]
    pub fn needs_exclusive(self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

/// L1 line coherence state (absence from the cache = Invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1State {
    /// Shared, read-only.
    Shared,
    /// Exclusive and clean (MESI mode only): the sole copy; the first
    /// write promotes it to Modified silently.
    Exclusive,
    /// Modified, exclusive and dirty.
    Modified,
}

impl L1State {
    /// May this copy be written without a coherence transaction?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, L1State::Exclusive | L1State::Modified)
    }
}

/// Directory knowledge about one line (stored in its home L2 slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No L1 holds the line; L2/DRAM data is current.
    Uncached,
    /// Bitmask of cores holding the line in Shared state.
    Shared(u64),
    /// One core holds the line in Modified state.
    Modified(CoreId),
}

/// Identifier of an in-flight coherence transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XactId(pub u64);

/// Events the engine schedules on the caller's queue and expects back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohEvent {
    /// A request message reached its home directory.
    DirArrive(XactId),
    /// A forwarded probe reached the exclusive owner.
    ProbeArrive(XactId),
    /// Data/permission grant reached the requester.
    GrantArrive(XactId),
    /// The requester's completion ack reached the directory: the line's
    /// FIFO queue may start servicing its next request.
    DirUnlock(LineAddr),
}

/// What the lease layer tells the engine to do with a probe that reached
/// an exclusive owner (see `lr-lease`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeAction {
    /// No valid lease: service the probe immediately.
    Proceed,
    /// A lease was broken by a prioritized "regular" request (paper §5):
    /// service the probe immediately and unpin the line.
    ProceedBreakingLease,
    /// A valid lease holds: queue the probe at the owning core until the
    /// lease is released or expires.
    Queue,
}

/// Callbacks the engine needs from its embedder (the machine crate).
pub trait CohContext {
    /// Schedule `ev` to be handed back to the engine after `delay` cycles.
    ///
    /// `dest` is the tile where the event is *delivered*: the home tile
    /// for directory events (`DirArrive`/`DirUnlock`), the owning core
    /// for probes, the requesting core for grants. A partitioned engine
    /// uses it to route the event to the partition owning that tile;
    /// a single-queue engine may ignore it.
    fn schedule(&mut self, delay: Cycle, dest: CoreId, ev: CohEvent);

    /// A memory transaction issued with token `token` finished at `now`.
    fn xact_completed(&mut self, token: u64, now: Cycle);

    /// A probe reached exclusive owner `owner` for `line`: should it be
    /// serviced, serviced breaking the lease, or queued? `regular` is true
    /// for non-lease requests when prioritization is enabled (paper §5).
    fn probe_action(
        &mut self,
        owner: CoreId,
        line: LineAddr,
        regular: bool,
        now: Cycle,
    ) -> ProbeAction;

    /// Exclusive ownership of `line` was granted to `core` at `now` for a
    /// request that carried lease intent: the lease layer starts the
    /// countdown (and pins the line via [`CoherenceEngine::pin`]).
    fn exclusive_granted(&mut self, core: CoreId, line: LineAddr, now: Cycle);

    /// Every way of an L1 set is pinned (leased) and a fill needs room:
    /// the lease layer must force-release one of `pinned` and return it.
    /// Returning `None` aborts the simulation (it indicates a lease-table
    /// bug, since `MAX_NUM_LEASES` bounds pinned lines per core).
    fn pinned_victim(&mut self, core: CoreId, pinned: &[LineAddr], now: Cycle) -> Option<LineAddr>;

    /// `line` was forcibly removed from `core`'s L1 (inclusive-L2
    /// back-invalidation). The lease layer drops any lease state for it.
    fn line_invalidated(&mut self, core: CoreId, line: LineAddr, now: Cycle);

    /// Is structured tracing enabled? The engine checks this before
    /// constructing any [`TraceEvent`], so tracing is zero-cost when off.
    /// Defaults to `false` (standalone/test embedders need not care).
    fn tracing(&self) -> bool {
        false
    }

    /// Record a structured protocol event at simulated time `now`. Called
    /// only when [`CohContext::tracing`] returns `true`.
    fn trace(&mut self, now: Cycle, ev: TraceEvent) {
        let _ = (now, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_permissions() {
        assert!(!AccessKind::Load.needs_exclusive());
        assert!(AccessKind::Store.needs_exclusive());
        assert!(AccessKind::Rmw.needs_exclusive());
    }
}
