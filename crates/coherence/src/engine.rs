//! The MSI directory protocol engine.
//!
//! State machine overview (one transaction = one core's one outstanding
//! miss; cores are in-order and blocking, so there is at most one
//! transaction per core):
//!
//! ```text
//! access() ──miss──► DirArrive ──► [per-line FIFO] ──► service()
//!    service: Uncached/Shared ──► GrantArrive at requester
//!             Modified(owner) ──► ProbeArrive at owner
//!    ProbeArrive: lease valid ──► stall (resumed by lease_released())
//!                 no copy     ──► ProbeMiss bounce ──► grant from home
//!                 otherwise   ──► downgrade owner ──► GrantArrive
//!                                 (+ DirUpdate back to the home)
//!    GrantArrive: install in L1, notify completion,
//!                 ack ──► DirUnlock ──► service next queued request
//! ```
//!
//! ## Tile ownership
//!
//! Every handler runs *at* one tile — the event's delivery tile — and
//! only mutates that tile's slice of state: its L1, its L2/directory
//! slice, its channel table and stalled-probe table, its stats block.
//! Steps that used to reach across tiles synchronously (invalidating a
//! sharer's L1, updating the directory after an owner downgrade,
//! applying a victim writeback, back-invalidating on an inclusive-L2
//! eviction) are now follow-on messages ([`CohEvent::InvArrive`],
//! [`CohEvent::DirUpdate`], [`CohEvent::Writeback`],
//! [`CohEvent::SharerDrop`], [`CohEvent::BackInval`]) carrying a real
//! NoC latency. Because that latency is at least
//! [`CoherenceEngine::noc_min_lookahead`], a partitioned executor can
//! commit events of different tiles concurrently within that window.
//!
//! In debug and `strict-invariants` builds, every tile-slice access
//! asserts that the touched tile equals the executing tile, so a
//! handler that silently reaches across partitions fails loudly.
//!
//! The directory is therefore *eventually consistent* with the L1s:
//! while a `DirUpdate`/`Writeback`/`SharerDrop` rides the NoC, the
//! home's view lags the owner's. Per-line FIFO channels make this
//! safe — a line's directory state is only *read* when its channel
//! starts servicing a request, and every in-flight update for the
//! previous transaction provably lands first (see `owner_downgrade`).
//! Stale victim messages are detected and dropped on arrival.

use crate::{AccessKind, CohContext, CohEvent, DirState, L1State, ProbeAction, Xact};
use lr_sim_cache::{Inserted, SetAssocCache};
use lr_sim_core::trace::{TraceAccess, TraceEvent};
use lr_sim_core::{CoreId, CoreStats, Cycle, LineAddr, MachineStats, SystemConfig};
use lr_sim_noc::{Mesh, MsgClass};
use std::collections::{HashMap, VecDeque};

/// A protocol invariant does not hold: abort the simulation with a
/// cycle-stamped reason carrying the violating core/line/transaction.
/// Under `lr-machine` the panic unwinds into the engine loop's catch,
/// which renders the structured failure report (trace window, in-flight
/// transactions, lease tables) with this message as its reason line —
/// never a bare `unwrap()` with no protocol context.
macro_rules! protocol_bug {
    ($now:expr, $($arg:tt)*) => {
        panic!(
            "protocol invariant violated at cycle {}: {}",
            $now,
            format_args!($($arg)*)
        )
    };
}

/// Number of low bits of a transaction id holding the per-core counter
/// (the requesting core occupies the bits above).
const XACT_CTR_BITS: u32 = 48;

/// A probe queued at an owning core behind a lease (Section 3: at most one
/// per (core, line) can exist — Proposition 1).
#[derive(Debug, Clone, Copy)]
pub struct PendingProbe {
    /// The transaction whose probe is stalled.
    pub xact: Xact,
    /// When the probe arrived (for queued-cycles accounting).
    pub since: Cycle,
}

#[derive(Debug, Default)]
struct LineChannel {
    active: Option<Xact>,
    queue: VecDeque<Xact>,
}

/// Mutable state owned by one tile: its per-line directory channels,
/// its stalled-probe table, and its transaction bookkeeping. Handlers
/// executing at the tile are the only code that touches it.
#[derive(Debug, Default)]
struct TileState {
    /// Per-line FIFO request channels of this tile's directory slice
    /// (Assumption 1 of the paper).
    channels: HashMap<LineAddr, LineChannel>,
    /// Slab of retired channel nodes. A line's channel is created on
    /// first directory arrival and dropped once its queue drains, so a
    /// contended line churns through channels continuously; recycling
    /// them keeps each queue's `VecDeque` buffer (the only per-node
    /// heap block) alive across that churn, making the steady-state
    /// directory path allocation-free (audited by `lr-bench`'s
    /// `cell_alloc` counting-allocator test).
    free_channels: Vec<LineChannel>,
    /// Probes stalled behind leases held by this tile's core.
    stalled: HashMap<LineAddr, PendingProbe>,
    /// Per-core issue counter for transaction ids.
    xact_ctr: u64,
    /// Misses issued by this tile's core that have not been granted yet.
    outstanding: u64,
}

/// The directory-based MSI coherence engine for all tiles.
pub struct CoherenceEngine {
    cfg: SystemConfig,
    mesh: Mesh,
    /// Private L1 per core: resident lines and their M/S state.
    l1: Vec<SetAssocCache<L1State>>,
    /// Shared L2 slice per tile: resident lines and their directory entry.
    /// A line's L2 entry is pinned while its channel is active, so the
    /// slice never evicts a line with an in-flight transaction.
    l2: Vec<SetAssocCache<DirState>>,
    /// Per-tile mutable protocol state.
    tiles: Vec<TileState>,
    /// Per-tile machine-level counters (`cores` left empty; merged by
    /// [`CoherenceEngine::stats`]). A relaxed executor accumulates into
    /// these concurrently — one block per partition-owned tile — and
    /// the deterministic tile-order merge reproduces the sequential
    /// totals exactly.
    tile_stats: Vec<MachineStats>,
    /// Per-core counters (tile i owns entry i).
    core_stats: Vec<CoreStats>,
    /// Gate for mid-flight per-line invariant sweeps (`strict-invariants`
    /// builds): the sweep reads every tile's L1, which is only safe when
    /// partitions are synchronized, so the relaxed executor turns it off
    /// and relies on the quiescence check.
    #[cfg_attr(not(feature = "strict-invariants"), allow(dead_code))]
    strict_at: bool,
}

thread_local! {
    /// Tile executing the current entry point (access/handle/...) on
    /// *this host thread*. Thread-local rather than an engine field
    /// because the relaxed executor calls entry points for different
    /// partitions concurrently from different host threads: a shared
    /// cursor would race (clobbering the ownership guard and routing
    /// [`CoherenceEngine::cur_stats`] to the wrong tile block). Each
    /// entry point sets it before touching tile state and never calls
    /// back into another entry point, so the value is stable for the
    /// dynamic extent of each call.
    static CUR: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

impl CoherenceEngine {
    /// Build the engine for `cfg.num_cores` tiles.
    pub fn new(cfg: &SystemConfig) -> Self {
        assert!(
            cfg.num_cores >= 1 && cfg.num_cores <= crate::CoreSet::CAPACITY,
            "sharer sets support up to {} cores",
            crate::CoreSet::CAPACITY
        );
        let l1 = (0..cfg.num_cores)
            .map(|_| SetAssocCache::new(cfg.l1_sets(), cfg.l1_ways))
            .collect();
        let l2 = (0..cfg.num_cores)
            .map(|_| SetAssocCache::new(cfg.l2_sets(), cfg.l2_ways))
            .collect();
        CoherenceEngine {
            mesh: Mesh::new(cfg),
            l1,
            l2,
            tiles: (0..cfg.num_cores).map(|_| TileState::default()).collect(),
            tile_stats: (0..cfg.num_cores).map(|_| MachineStats::new(0)).collect(),
            core_stats: vec![CoreStats::default(); cfg.num_cores],
            strict_at: true,
            cfg: cfg.clone(),
        }
    }

    /// Conservative-PDES lookahead of the coherence protocol: the minimum
    /// latency of any cross-tile NoC message. Every event this engine
    /// schedules for a tile other than the one currently executing rides
    /// at least one such message, so a partitioned event loop may run
    /// each partition this many cycles ahead of the others' clocks
    /// without risking a causality violation.
    pub fn noc_min_lookahead(&self) -> Cycle {
        self.mesh.min_cross_latency()
    }

    /// Per-partition-pair refinement of
    /// [`CoherenceEngine::noc_min_lookahead`]: entry `[p][q]` is the
    /// minimum NoC latency of any message from a tile of partition `p`
    /// to a tile of partition `q` under `map`. Mesh-distant — and above
    /// all cross-socket — partition pairs admit much wider safe windows
    /// than the global minimum over all tile pairs. The matrix is
    /// symmetric (the mesh metric is), as the sharded queue requires.
    pub fn pair_lookahead(&self, map: &lr_sim_core::PartitionMap) -> Vec<Vec<Cycle>> {
        let parts = map.partitions();
        let mut blocks = vec![(usize::MAX, 0usize); parts];
        for t in 0..map.tiles() {
            let b = &mut blocks[map.partition_of(t)];
            b.0 = b.0.min(t);
            b.1 = b.1.max(t + 1);
        }
        (0..parts)
            .map(|p| {
                (0..parts)
                    .map(|q| self.mesh.min_latency_between(blocks[p], blocks[q]))
                    .collect()
            })
            .collect()
    }

    /// Home tile (L2 slice / directory) of a line: stride interleaving
    /// within the line's *home socket*. The socket is chosen by the
    /// 1 GiB region the line lives in (`line >> 24`, i.e. byte address
    /// `>> 30`), so memory placed in a socket's arena is homed on that
    /// socket's directory slices and reached without crossing the
    /// inter-socket link. With `sockets == 1` this is exactly the old
    /// flat stride interleaving `line % num_cores`.
    #[inline]
    pub fn home_of(&self, line: LineAddr) -> CoreId {
        let sockets = self.cfg.sockets as u64;
        let tps = (self.cfg.num_cores / self.cfg.sockets) as u64;
        let s = (line.0 >> 24) % sockets;
        CoreId((s * tps + line.0 % tps) as u16)
    }

    // ---- tile-ownership guard -------------------------------------------

    /// Debug-mode guard: every tile-slice access must belong to the tile
    /// executing the current event. Compiled out in plain release builds.
    #[inline]
    fn assert_tile(&self, t: CoreId) {
        #[cfg(any(debug_assertions, feature = "strict-invariants"))]
        assert!(
            t.idx() == CUR.get(),
            "tile-ownership violated: handler executing at tile {} touched tile {}",
            CUR.get(),
            t.idx()
        );
        #[cfg(not(any(debug_assertions, feature = "strict-invariants")))]
        let _ = t;
    }

    fn l1_at(&self, c: CoreId) -> &SetAssocCache<L1State> {
        self.assert_tile(c);
        &self.l1[c.idx()]
    }

    fn l1_mut(&mut self, c: CoreId) -> &mut SetAssocCache<L1State> {
        self.assert_tile(c);
        &mut self.l1[c.idx()]
    }

    fn l2_at(&self, h: CoreId) -> &SetAssocCache<DirState> {
        self.assert_tile(h);
        &self.l2[h.idx()]
    }

    fn l2_mut(&mut self, h: CoreId) -> &mut SetAssocCache<DirState> {
        self.assert_tile(h);
        &mut self.l2[h.idx()]
    }

    fn tile_at(&self, t: CoreId) -> &TileState {
        self.assert_tile(t);
        &self.tiles[t.idx()]
    }

    fn tile_mut(&mut self, t: CoreId) -> &mut TileState {
        self.assert_tile(t);
        &mut self.tiles[t.idx()]
    }

    /// The executing tile's stats block.
    fn cur_stats(&mut self) -> &mut MachineStats {
        &mut self.tile_stats[CUR.get()]
    }

    fn cstats(&mut self, c: CoreId) -> &mut CoreStats {
        self.assert_tile(c);
        &mut self.core_stats[c.idx()]
    }

    // ---- public surface --------------------------------------------------

    /// Protocol statistics: per-tile blocks merged in tile order plus the
    /// per-core counters. The merge is deterministic and identical to
    /// sequential accumulation, so relaxed and lockstep executors report
    /// byte-identical numbers.
    pub fn stats(&self) -> MachineStats {
        let mut m = MachineStats::new(0);
        m.cores = self.core_stats.clone();
        for t in &self.tile_stats {
            m.merge_from(t);
        }
        m
    }

    /// Mutable per-core counters, for the machine layer's own per-core
    /// accounting (instructions, ops, lease counters). An entry point:
    /// the machine calls it while executing an event at `c`'s tile.
    pub fn core_stats_mut(&mut self, c: CoreId) -> &mut CoreStats {
        CUR.set(c.idx());
        &mut self.core_stats[c.idx()]
    }

    /// Current L1 state of `line` at `core` (None = Invalid).
    pub fn l1_state(&self, core: CoreId, line: LineAddr) -> Option<L1State> {
        self.l1[core.idx()].peek(line).copied()
    }

    /// Current directory state of `line` (None = not resident in L2).
    pub fn dir_state(&self, line: LineAddr) -> Option<DirState> {
        self.l2[self.home_of(line).idx()].peek(line).copied()
    }

    /// Pin or unpin `line` in `core`'s L1 (lease layer: leased lines are
    /// pinned so they cannot be picked as eviction victims). An entry
    /// point: executes at `core`'s tile.
    pub fn pin(&mut self, core: CoreId, line: LineAddr, pinned: bool) -> bool {
        CUR.set(core.idx());
        self.l1[core.idx()].set_pinned(line, pinned)
    }

    /// Is a probe currently stalled behind a lease at (core, line)?
    pub fn has_stalled_probe(&self, core: CoreId, line: LineAddr) -> bool {
        self.tiles[core.idx()].stalled.contains_key(&line)
    }

    /// Number of in-flight transactions (for quiescence checks).
    pub fn in_flight(&self) -> usize {
        self.tiles.iter().map(|t| t.outstanding as usize).sum()
    }

    /// Enable/disable mid-flight per-line invariant sweeps (on by
    /// default; the relaxed executor disables them because the sweep
    /// reads other partitions' L1s).
    pub fn set_strict_at(&mut self, on: bool) {
        self.strict_at = on;
    }

    /// Uncharged control-message latency between two tiles (for machine
    /// -layer messages that ride the same mesh but are not coherence
    /// traffic, e.g. allocator requests).
    pub fn ctrl_latency(&self, from: CoreId, to: CoreId) -> Cycle {
        self.mesh.latency(from, to, MsgClass::Control)
    }

    /// Diagnostic dump of in-flight protocol state (for deadlock reports).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, tile) in self.tiles.iter().enumerate() {
            if tile.outstanding > 0 {
                let _ = writeln!(s, "  tile {i}: {} outstanding miss(es)", tile.outstanding);
            }
            for (l, p) in &tile.stalled {
                let _ = writeln!(
                    s,
                    "  stalled probe at core{i} for {l}: xact {} (req core{}) since {}",
                    p.xact.id,
                    p.xact.core.idx(),
                    p.since
                );
            }
            for (l, ch) in &tile.channels {
                let _ = writeln!(
                    s,
                    "  channel {l} at tile {i}: active={:?} queued={:?}",
                    ch.active.map(|x| x.id),
                    ch.queue.iter().map(|x| x.id).collect::<Vec<_>>()
                );
            }
        }
        s
    }

    fn msg(&mut self, from: CoreId, to: CoreId, class: MsgClass) -> Cycle {
        let hops = self.mesh.flit_hops(from, to, class);
        let socket_hops = self.mesh.socket_flit_hops(from, to, class);
        let lat = self.mesh.latency(from, to, class);
        let ts = self.cur_stats();
        match class {
            MsgClass::Control => ts.msgs_control += 1,
            MsgClass::Data => ts.msgs_data += 1,
        }
        ts.flit_hops += hops;
        if socket_hops > 0 {
            ts.cross_socket_msgs += 1;
            ts.socket_flit_hops += socket_hops;
        }
        lat
    }

    /// Issue a memory access. Returns `Some(completion_time)` on an L1
    /// hit; otherwise the access goes through the protocol and finishes
    /// with a `ctx.xact_completed(token, ..)` callback.
    ///
    /// `lease_intent` marks the access as a lease acquisition: exclusive
    /// ownership triggers `ctx.exclusive_granted`. `regular` marks the
    /// request as a plain (non-lease) access for the §5 prioritization
    /// option.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        now: Cycle,
        token: u64,
        core: CoreId,
        line: LineAddr,
        kind: AccessKind,
        lease_intent: bool,
        regular: bool,
        ctx: &mut dyn CohContext,
    ) -> Option<Cycle> {
        CUR.set(core.idx());
        if lease_intent {
            debug_assert!(kind.needs_exclusive(), "leases demand Exclusive state");
        }
        let st = self.l1_mut(core).touch(line).map(|s| *s);
        let hit = match (st, kind.needs_exclusive()) {
            (Some(s), true) => s.writable(),
            (Some(_), false) => true,
            (None, _) => false,
        };
        if hit {
            if kind.needs_exclusive() && st == Some(L1State::Exclusive) {
                // MESI silent upgrade: E → M without any message.
                *self.l1_mut(core).peek_mut(line).unwrap() = L1State::Modified;
            }
            self.cstats(core).l1_hits += 1;
            let done = now + self.cfg.l1_latency;
            if lease_intent {
                ctx.exclusive_granted(core, line, done);
            }
            return Some(done);
        }
        self.cstats(core).l1_misses += 1;
        let tile = self.tile_mut(core);
        debug_assert!(tile.xact_ctr < 1 << XACT_CTR_BITS, "xact counter overflow");
        let id = ((core.idx() as u64) << XACT_CTR_BITS) | tile.xact_ctr;
        tile.xact_ctr += 1;
        tile.outstanding += 1;
        let x = Xact {
            id,
            token,
            core,
            line,
            kind,
            lease_intent,
            regular,
            grant_exclusive: false,
            enq_time: 0,
        };
        if ctx.tracing() {
            ctx.trace(
                now,
                TraceEvent::MissIssued {
                    xact: id,
                    core,
                    line,
                    kind: if kind.needs_exclusive() {
                        TraceAccess::Exclusive
                    } else {
                        TraceAccess::Load
                    },
                    lease_intent,
                },
            );
        }
        let home = self.home_of(line);
        let lat = self.msg(core, home, MsgClass::Control);
        ctx.schedule(lat, home, CohEvent::DirArrive(x));
        None
    }

    /// Feed a previously scheduled coherence event back into the engine.
    /// `at` is the tile the event was scheduled for (the `dest` the
    /// engine passed to [`CohContext::schedule`]): the handler executes
    /// there and only mutates that tile's state.
    pub fn handle(&mut self, now: Cycle, at: CoreId, ev: CohEvent, ctx: &mut dyn CohContext) {
        CUR.set(at.idx());
        match ev {
            CohEvent::DirArrive(x) => self.dir_arrive(now, x, ctx),
            CohEvent::ProbeArrive(x, o) => {
                debug_assert_eq!(o, at, "probe delivered to the wrong tile");
                self.probe_arrive(now, x, o, ctx)
            }
            CohEvent::ProbeMiss(x) => self.probe_miss(now, x, ctx),
            CohEvent::GrantArrive(x) => self.grant_arrive(now, x, ctx),
            CohEvent::DirUnlock(line) => self.dir_unlock(now, line, ctx),
            CohEvent::InvArrive { line } => self.inv_arrive(at, line),
            CohEvent::DirUpdate { line, dir } => self.dir_update(now, line, dir),
            CohEvent::Writeback { line, from } => self.writeback_arrive(line, from),
            CohEvent::SharerDrop { line, from } => self.sharer_drop(line, from),
            CohEvent::BackInval { line } => self.back_inval(now, at, line, ctx),
        }
    }

    /// The lease on `(core, line)` ended (voluntarily or not): unpin the
    /// line and resume any probe stalled behind the lease. An entry
    /// point: executes at `core`'s tile.
    pub fn lease_released(
        &mut self,
        now: Cycle,
        core: CoreId,
        line: LineAddr,
        ctx: &mut dyn CohContext,
    ) {
        CUR.set(core.idx());
        self.l1_mut(core).set_pinned(line, false);
        if let Some(p) = self.tile_mut(core).stalled.remove(&line) {
            self.cstats(core).probe_queued_cycles += now - p.since;
            if ctx.tracing() {
                ctx.trace(
                    now,
                    TraceEvent::ProbeResumed {
                        owner: core,
                        line,
                        waited: now - p.since,
                    },
                );
            }
            self.owner_downgrade(now, p.xact, core, ctx);
        }
    }

    fn dir_arrive(&mut self, now: Cycle, mut x: Xact, ctx: &mut dyn CohContext) {
        let line = x.line;
        let home = self.home_of(line);
        let tile = self.tile_mut(home);
        let TileState {
            channels,
            free_channels,
            ..
        } = tile;
        let ch = channels
            .entry(line)
            .or_insert_with(|| free_channels.pop().unwrap_or_default());
        if ch.active.is_some() {
            x.enq_time = now;
            ch.queue.push_back(x);
            let qlen = ch.queue.len();
            let ts = self.cur_stats();
            if qlen > ts.max_dir_queue_len {
                ts.max_dir_queue_len = qlen;
            }
            if ctx.tracing() {
                ctx.trace(
                    now,
                    TraceEvent::DirQueued {
                        xact: x.id,
                        line,
                        depth: qlen,
                    },
                );
            }
        } else {
            ch.active = Some(x);
            if ctx.tracing() {
                ctx.trace(now, TraceEvent::DirArrive { xact: x.id, line });
            }
            self.service(now, x, ctx);
        }
    }

    fn dir_unlock(&mut self, now: Cycle, line: LineAddr, ctx: &mut dyn CohContext) {
        let home = self.home_of(line);
        self.l2_mut(home).set_pinned(line, false);
        if ctx.tracing() {
            ctx.trace(now, TraceEvent::DirUnlock { line });
        }
        let tile = self.tile_mut(home);
        let Some(ch) = tile.channels.get_mut(&line) else {
            protocol_bug!(now, "DirUnlock for {line} but no request channel exists");
        };
        ch.active = None;
        let next = ch.queue.pop_front();
        if next.is_none() {
            if let Some(ch) = tile.channels.remove(&line) {
                debug_assert!(ch.active.is_none() && ch.queue.is_empty());
                // Recycle the node: its queue keeps (empty) capacity.
                tile.free_channels.push(ch);
            }
        }
        // The previous transaction on `line` is fully settled here: its
        // DirUpdate (if any) provably landed first, its invalidations
        // landed before its grant. Only victim messages may still be in
        // flight, so the sweep checks the single-writer property only.
        #[cfg(feature = "strict-invariants")]
        if self.strict_at {
            self.check_invariants_at(line);
        }
        if let Some(next) = next {
            self.tile_mut(home).channels.get_mut(&line).unwrap().active = Some(next);
            self.cur_stats().dir_queue_wait_cycles += now - next.enq_time;
            if ctx.tracing() {
                ctx.trace(
                    now,
                    TraceEvent::DirArrive {
                        xact: next.id,
                        line,
                    },
                );
            }
            self.service(now, next, ctx);
        }
    }

    /// Directory services the transaction at the head of the line queue.
    /// Executes at the home tile.
    fn service(&mut self, now: Cycle, x: Xact, ctx: &mut dyn CohContext) {
        let Xact {
            core, line, kind, ..
        } = x;
        let home = self.home_of(line);
        self.cur_stats().dir_requests += 1;
        let mut t = now + self.cfg.l2_tag_latency;

        if self.l2_mut(home).touch(line).is_some() {
            self.cur_stats().l2_hits += 1;
        } else {
            self.cur_stats().l2_misses += 1;
            t += self.cfg.dram_latency;
            self.l2_install(now, home, line, ctx);
        }
        // Keep the line resident while its transaction is in flight.
        self.l2_mut(home).set_pinned(line, true);

        let dir = *self.l2_at(home).peek(line).unwrap();
        match dir {
            DirState::Uncached => self.grant_from_home(now, t, x, ctx),
            DirState::Shared(mask) => {
                if !kind.needs_exclusive() {
                    self.grant_from_home(now, t, x, ctx)
                } else {
                    // Invalidate all other sharers; acks go to the
                    // requester. Each sharer drops its copy when the
                    // invalidation *arrives* at its tile; every arrival
                    // is strictly before the grant below, since the
                    // grant waits out max(to_s + ack) ≥ to_s + 1.
                    let others = mask.without(core);
                    let mut inv_lat = 0;
                    for s in others.iter() {
                        let to_s = self.msg(home, s, MsgClass::Control);
                        let ack = self.msg(s, core, MsgClass::Control);
                        inv_lat = inv_lat.max(to_s + ack);
                        ctx.schedule(to_s, s, CohEvent::InvArrive { line });
                        self.cur_stats().invalidations += 1;
                    }
                    let upgrade = mask.contains(core);
                    let data_lat = if upgrade {
                        // Permission-only grant.
                        self.msg(home, core, MsgClass::Control)
                    } else {
                        self.cfg.l2_data_latency + self.msg(home, core, MsgClass::Data)
                    };
                    *self.l2_mut(home).peek_mut(line).unwrap() = DirState::Modified(core);
                    ctx.schedule(
                        t - now + data_lat.max(inv_lat),
                        core,
                        CohEvent::GrantArrive(x),
                    );
                }
            }
            DirState::Modified(o) if o == core => {
                // The requester is the directory's owner of record, yet
                // it missed in L1 — hits never reach the directory, so
                // its copy is gone: an eviction whose writeback is still
                // in flight (and will be dropped on arrival, because
                // this transaction holds the channel). Serve from the
                // home slice like any evicted-owner bounce; crucially
                // `grant_from_home` also rewrites the directory (a read
                // re-fetch must land as Shared, not stay Modified).
                self.grant_from_home(now, t, x, ctx);
            }
            DirState::Modified(o) => {
                let lat = self.msg(home, o, MsgClass::Control);
                ctx.schedule(t - now + lat, o, CohEvent::ProbeArrive(x, o));
            }
        }
    }

    /// Serve data (or permission) straight from the home slice.
    fn grant_from_home(
        &mut self,
        now: Cycle,
        t_ready: Cycle,
        mut x: Xact,
        ctx: &mut dyn CohContext,
    ) {
        let Xact {
            core, line, kind, ..
        } = x;
        let home = self.home_of(line);
        let mesi = self.cfg.protocol == lr_sim_core::CoherenceProtocol::Mesi;
        if self.l2_at(home).peek(line).is_none() {
            protocol_bug!(
                now,
                "granting {line} to {core} but the line is not resident in its home slice \
                 {home} (L2 pin lost mid-transaction?)"
            );
        }
        let dir = self.l2_mut(home).peek_mut(line).unwrap();
        *dir = if kind.needs_exclusive() {
            DirState::Modified(core)
        } else {
            match *dir {
                DirState::Shared(mask) => DirState::Shared(mask.with(core)),
                // MESI: a sole reader of an uncached line gets Exclusive;
                // the directory tracks it like any exclusive owner.
                _ if mesi => {
                    x.grant_exclusive = true;
                    DirState::Modified(core)
                }
                _ => DirState::Shared(crate::CoreSet::only(core)),
            }
        };
        let lat = self.cfg.l2_data_latency + self.msg(home, core, MsgClass::Data);
        ctx.schedule(t_ready - now + lat, core, CohEvent::GrantArrive(x));
    }

    /// A forwarded probe reached the owning core. Executes at the owner.
    fn probe_arrive(&mut self, now: Cycle, x: Xact, o: CoreId, ctx: &mut dyn CohContext) {
        let Xact { line, regular, .. } = x;
        if self.l1_at(o).contains(line) {
            // A probe is actually delivered to the owner only on this
            // path; the evicted-owner bounce below serves from home
            // without one, so counting in `service` would overcount.
            self.cur_stats().owner_probes += 1;
            self.cstats(o).probes_received += 1;
            if ctx.tracing() {
                ctx.trace(
                    now,
                    TraceEvent::ProbeArrive {
                        xact: x.id,
                        owner: o,
                        line,
                    },
                );
            }
            match ctx.probe_action(o, line, regular, now) {
                ProbeAction::Queue => {
                    self.cstats(o).probes_queued += 1;
                    if ctx.tracing() {
                        ctx.trace(
                            now,
                            TraceEvent::ProbeStalled {
                                xact: x.id,
                                owner: o,
                                line,
                            },
                        );
                    }
                    let prev = self.tile_mut(o).stalled.insert(
                        line,
                        PendingProbe {
                            xact: x,
                            since: now,
                        },
                    );
                    if let Some(prev) = prev {
                        protocol_bug!(
                            now,
                            "two probes stalled at {o} for {line} (prior xact {} since \
                             cycle {}): violates Proposition 1",
                            prev.xact.id,
                            prev.since
                        );
                    }
                }
                ProbeAction::ProceedBreakingLease => {
                    self.l1_mut(o).set_pinned(line, false);
                    self.owner_downgrade(now, x, o, ctx);
                }
                ProbeAction::Proceed => self.owner_downgrade(now, x, o, ctx),
            }
        } else {
            // The owner evicted the line (its writeback raced the probe):
            // the data is headed home; bounce there so the home serves
            // from its slice once the tag lookup completes.
            let home = self.home_of(line);
            let lat = self.msg(o, home, MsgClass::Control);
            ctx.schedule(lat, home, CohEvent::ProbeMiss(x));
        }
    }

    /// A probe bounced off an owner that no longer holds the line.
    /// Executes at the home tile, which serves from its slice.
    fn probe_miss(&mut self, now: Cycle, x: Xact, ctx: &mut dyn CohContext) {
        // The owner's writeback either already landed (directory now
        // Uncached) or is still in flight (it will be dropped on arrival
        // because this transaction holds the channel). Either way the
        // home's data is authoritative.
        let t = now + self.cfg.l2_tag_latency;
        self.grant_from_home(now, t, x, ctx);
    }

    /// The owning core downgrades/invalidates its copy and forwards data
    /// cache-to-cache to the requester. Executes at the owner; the home
    /// directory learns the outcome via a `DirUpdate` message.
    fn owner_downgrade(&mut self, now: Cycle, x: Xact, o: CoreId, ctx: &mut dyn CohContext) {
        let Xact {
            core: req,
            line,
            kind,
            ..
        } = x;
        let home = self.home_of(line);
        let t = now + self.cfg.l1_latency;
        if self.l1_at(o).is_pinned(line) {
            protocol_bug!(
                now,
                "downgrading {line} at {o} while it is pinned (leased) — probes must stall \
                 behind a valid lease, never break it silently"
            );
        }
        let Some(&owner_state) = self.l1_at(o).peek(line) else {
            protocol_bug!(
                now,
                "downgrading {line} at {o} for xact {}, but the owner holds no copy \
                 (directory/L1 disagree)",
                x.id
            );
        };
        let new_dir = if kind.needs_exclusive() {
            self.l1_mut(o).remove(line);
            DirState::Modified(req)
        } else {
            *self.l1_mut(o).peek_mut(line).unwrap() = L1State::Shared;
            DirState::Shared(crate::CoreSet::only(o).with(req))
        };
        if owner_state == L1State::Modified {
            // Only dirty copies write back; an Exclusive (clean) copy is
            // downgraded without one (MESI).
            self.cstats(o).l1_writebacks += 1;
        }
        // The home learns the downgrade via an explicit update message.
        // It always lands strictly before this transaction's DirUnlock:
        // the unlock path takes l1_latency + data(o→req) + ctrl(req→home)
        // ≥ 1 + ctrl(o→home) by the mesh triangle inequality and
        // Data ≥ Control, so the directory is current when the line's
        // channel reopens.
        let upd = self.msg(o, home, MsgClass::Control);
        ctx.schedule(upd, home, CohEvent::DirUpdate { line, dir: new_dir });
        let data = self.msg(o, req, MsgClass::Data);
        ctx.schedule(t - now + data, req, CohEvent::GrantArrive(x));
    }

    /// An owner's downgrade result reached the home directory.
    fn dir_update(&mut self, now: Cycle, line: LineAddr, dir: DirState) {
        let home = self.home_of(line);
        if self.l2_at(home).peek(line).is_none() {
            protocol_bug!(
                now,
                "DirUpdate for {line} but no home L2 entry (pin lost mid-transaction?)"
            );
        }
        *self.l2_mut(home).peek_mut(line).unwrap() = dir;
    }

    /// An invalidation reached a Shared-state holder: drop the copy.
    /// Idempotent — the holder may have evicted it on its own while the
    /// invalidation was in flight.
    fn inv_arrive(&mut self, at: CoreId, line: LineAddr) {
        self.l1_mut(at).remove(line);
    }

    /// A victim writeback reached the home. Applied only if the
    /// directory still names `from` as owner and no transaction is
    /// active on the line; a stale writeback (the protocol has already
    /// re-granted the line) is dropped.
    fn writeback_arrive(&mut self, line: LineAddr, from: CoreId) {
        let home = self.home_of(line);
        if self.tile_at(home).channels.contains_key(&line) {
            // An active transaction rewrites the directory itself (the
            // requester re-fetches through the home or a probe-miss
            // bounce); applying the stale writeback under it would
            // corrupt that.
            return;
        }
        if let Some(dir) = self.l2_mut(home).peek_mut(line) {
            if *dir == DirState::Modified(from) {
                *dir = DirState::Uncached;
            }
        }
    }

    /// A Shared-state victim notice reached the home: clear the sharer
    /// bit. Dropped if the directory has moved on (e.g. the line was
    /// re-granted exclusively while the notice was in flight).
    fn sharer_drop(&mut self, line: LineAddr, from: CoreId) {
        let home = self.home_of(line);
        if let Some(dir) = self.l2_mut(home).peek_mut(line) {
            if let DirState::Shared(mask) = *dir {
                let m = mask.without(from);
                *dir = if m.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(m)
                };
            }
        }
    }

    /// An inclusive-L2 back-invalidation reached a copy holder: drop the
    /// copy and any lease on it. Idempotent.
    fn back_inval(&mut self, now: Cycle, at: CoreId, line: LineAddr, ctx: &mut dyn CohContext) {
        if self.l1_at(at).contains(line) {
            ctx.line_invalidated(at, line, now);
            self.l1_mut(at).set_pinned(line, false);
            self.l1_mut(at).remove(line);
        }
    }

    fn grant_arrive(&mut self, now: Cycle, x: Xact, ctx: &mut dyn CohContext) {
        let Xact {
            id,
            token,
            core,
            line,
            kind,
            lease_intent,
            grant_exclusive,
            ..
        } = x;
        let tile = self.tile_mut(core);
        if tile.outstanding == 0 {
            protocol_bug!(
                now,
                "GrantArrive at {core} for xact {id} but the core has no outstanding miss"
            );
        }
        tile.outstanding -= 1;

        if let Some(st) = self.l1_mut(core).touch(line) {
            // Upgrade path: the S copy is still resident.
            if kind.needs_exclusive() {
                *st = L1State::Modified;
            }
        } else {
            let new_state = if kind.needs_exclusive() {
                L1State::Modified
            } else if grant_exclusive {
                L1State::Exclusive
            } else {
                L1State::Shared
            };
            loop {
                match self.l1_mut(core).insert(line, new_state) {
                    Inserted::NoVictim => break,
                    Inserted::Evicted(vline, vstate) => {
                        self.evict_l1(now, core, vline, vstate, ctx);
                        break;
                    }
                    Inserted::AllPinned => {
                        let pinned = self.l1_at(core).pinned_in_set(line);
                        let Some(victim) = ctx.pinned_victim(core, &pinned, now) else {
                            protocol_bug!(
                                now,
                                "lease layer freed none of {} pinned ways at {core} for a fill \
                                 of {line} (MAX_NUM_LEASES must bound pinned lines per set)",
                                pinned.len()
                            );
                        };
                        if !pinned.contains(&victim) {
                            protocol_bug!(
                                now,
                                "lease layer chose victim {victim} outside the pinned set \
                                 {pinned:?} at {core}"
                            );
                        }
                        // Force-releasing the lease also resumes any
                        // stalled probe on that line.
                        self.lease_released(now, core, victim, ctx);
                    }
                }
            }
        }

        if ctx.tracing() {
            ctx.trace(
                now,
                TraceEvent::GrantArrive {
                    xact: id,
                    core,
                    line,
                    exclusive: kind.needs_exclusive() || grant_exclusive,
                },
            );
        }
        // The grant installed the line: from here on at most one core
        // may hold it writable (the full directory/L1 agreement is
        // checked at this transaction's DirUnlock, once the in-flight
        // DirUpdate has landed).
        #[cfg(feature = "strict-invariants")]
        if self.strict_at {
            self.check_invariants_at(line);
        }
        let done = now + self.cfg.l1_latency;
        if lease_intent {
            ctx.exclusive_granted(core, line, done);
        }
        let home = self.home_of(line);
        let ack = self.msg(core, home, MsgClass::Control);
        ctx.schedule(ack, home, CohEvent::DirUnlock(line));
        ctx.xact_completed(token, done);
    }

    /// Bookkeeping for an L1 eviction (silent from the thread's view).
    /// Executes at the evicting core; the home learns via a `Writeback`
    /// (E/M victims) or `SharerDrop` (S victims) message.
    fn evict_l1(
        &mut self,
        now: Cycle,
        core: CoreId,
        vline: LineAddr,
        vstate: L1State,
        ctx: &mut dyn CohContext,
    ) {
        if ctx.tracing() {
            ctx.trace(
                now,
                TraceEvent::L1Evict {
                    core,
                    line: vline,
                    dirty: vstate == L1State::Modified,
                },
            );
        }
        self.cstats(core).l1_evictions += 1;
        let home_v = self.home_of(vline);
        match vstate {
            L1State::Modified => {
                self.cstats(core).l1_writebacks += 1;
                let lat = self.msg(core, home_v, MsgClass::Data);
                ctx.schedule(
                    lat,
                    home_v,
                    CohEvent::Writeback {
                        line: vline,
                        from: core,
                    },
                );
            }
            L1State::Exclusive => {
                // Clean exclusive copy: a control-only PutE.
                let lat = self.msg(core, home_v, MsgClass::Control);
                ctx.schedule(
                    lat,
                    home_v,
                    CohEvent::Writeback {
                        line: vline,
                        from: core,
                    },
                );
            }
            L1State::Shared => {
                let lat = self.msg(core, home_v, MsgClass::Control);
                ctx.schedule(
                    lat,
                    home_v,
                    CohEvent::SharerDrop {
                        line: vline,
                        from: core,
                    },
                );
            }
        }
    }

    /// Install `line` in its home L2 slice (DRAM fill), back-invalidating
    /// the victim's L1 copies to preserve inclusivity. The invalidations
    /// are messages: each copy holder drops its copy (and lease) when the
    /// `BackInval` arrives at its tile.
    fn l2_install(&mut self, now: Cycle, home: CoreId, line: LineAddr, ctx: &mut dyn CohContext) {
        match self.l2_mut(home).insert(line, DirState::Uncached) {
            Inserted::NoVictim => {}
            Inserted::Evicted(vline, vdir) => match vdir {
                DirState::Uncached => {}
                DirState::Shared(mask) => {
                    for s in mask.iter() {
                        let lat = self.msg(home, s, MsgClass::Control);
                        ctx.schedule(lat, s, CohEvent::BackInval { line: vline });
                        self.cur_stats().invalidations += 1;
                    }
                }
                DirState::Modified(o) => {
                    let lat = self.msg(home, o, MsgClass::Control);
                    ctx.schedule(lat, o, CohEvent::BackInval { line: vline });
                    // The victim's dirty data heads home alongside.
                    let _ = self.msg(o, home, MsgClass::Data);
                    self.cur_stats().invalidations += 1;
                }
            },
            Inserted::AllPinned => {
                protocol_bug!(
                    now,
                    "installing {line} at {home}: every way of its L2 set is pinned by an \
                     active transaction; enlarge L2 or the set associativity"
                )
            }
        }
    }

    /// Mid-flight invariant narrowed to one line: the *single-writer*
    /// property — at most one E/M copy, and an E/M copy excludes all
    /// other copies.
    ///
    /// Unlike [`CoherenceEngine::check_invariants`], this is safe to run
    /// mid-simulation at this line's `DirUnlock`/`GrantArrive`. The
    /// directory-agreement checks of the quiescence sweep can *not* run
    /// here: directory updates, writebacks and sharer drops ride NoC
    /// messages now, so the home's view lags its tiles' L1s by design
    /// while those messages are in flight.
    pub fn check_invariants_at(&self, line: LineAddr) {
        let mut exclusive: Option<CoreId> = None;
        let mut copies = 0usize;
        for (c, l1) in self.l1.iter().enumerate() {
            let Some(&st) = l1.peek(line) else { continue };
            copies += 1;
            if matches!(st, L1State::Modified | L1State::Exclusive) {
                if let Some(prev) = exclusive {
                    panic!("two E/M copies of {line}: {prev} and {}", CoreId(c as u16));
                }
                exclusive = Some(CoreId(c as u16));
            }
        }
        if let Some(o) = exclusive {
            assert!(
                copies == 1,
                "E/M copy of {line} at {o} coexists with {} other copies",
                copies - 1
            );
        }
    }

    /// Protocol invariants, checked at quiescence (no in-flight
    /// transactions *and* a drained event queue, so every victim message
    /// has been applied): single-writer, sharer-mask consistency,
    /// inclusivity.
    pub fn check_invariants(&self) {
        assert_eq!(self.in_flight(), 0, "invariant check requires quiescence");
        assert!(self.tiles.iter().all(|t| t.stalled.is_empty()));
        for (c, l1) in self.l1.iter().enumerate() {
            let c = CoreId(c as u16);
            for (line, st) in l1.iter() {
                let dir = self
                    .dir_state(line)
                    .unwrap_or_else(|| panic!("inclusivity violated: {line} at {c} not in L2"));
                match st {
                    L1State::Modified | L1State::Exclusive => {
                        assert_eq!(
                            dir,
                            DirState::Modified(c),
                            "dir disagrees with E/M copy at {c} for {line}"
                        );
                        for (o, other) in self.l1.iter().enumerate() {
                            if o != c.idx() {
                                assert!(!other.contains(line), "two copies of modified {line}");
                            }
                        }
                    }
                    L1State::Shared => match dir {
                        DirState::Shared(mask) => {
                            assert!(mask.contains(c), "sharer bit missing for {c} {line}")
                        }
                        other => panic!("S copy at {c} for {line} but dir={other:?}"),
                    },
                }
            }
        }
        // Directory entries must be backed by actual copies.
        for l2 in &self.l2 {
            for (line, dir) in l2.iter() {
                match *dir {
                    DirState::Uncached => {}
                    DirState::Modified(o) => {
                        let st = self.l1[o.idx()].peek(line);
                        assert!(
                            matches!(st, Some(L1State::Modified | L1State::Exclusive)),
                            "dir=M({o}) but no E/M copy for {line} (found {st:?})"
                        );
                    }
                    DirState::Shared(mask) => {
                        assert!(!mask.is_empty(), "empty sharer set for {line}");
                        for s in mask.iter() {
                            assert_eq!(
                                self.l1[s.idx()].peek(line),
                                Some(&L1State::Shared),
                                "dir sharer {s} lacks S copy of {line}"
                            );
                        }
                    }
                }
            }
        }
    }
}
