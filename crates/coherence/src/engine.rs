//! The MSI directory protocol engine.
//!
//! State machine overview (one transaction = one core's one outstanding
//! miss; cores are in-order and blocking, so there is at most one
//! transaction per core):
//!
//! ```text
//! access() ──miss──► DirArrive ──► [per-line FIFO] ──► service()
//!    service: Uncached/Shared ──► GrantArrive at requester
//!             Modified(owner) ──► ProbeArrive at owner
//!    ProbeArrive: lease valid ──► stall (resumed by lease_released())
//!                 otherwise   ──► downgrade owner ──► GrantArrive
//!    GrantArrive: install in L1, notify completion,
//!                 ack ──► DirUnlock ──► service next queued request
//! ```

use crate::{AccessKind, CohContext, CohEvent, DirState, L1State, ProbeAction, XactId};
use lr_sim_cache::{Inserted, SetAssocCache};
use lr_sim_core::trace::{TraceAccess, TraceEvent};
use lr_sim_core::{CoreId, Cycle, LineAddr, MachineStats, SystemConfig};
use lr_sim_noc::{Mesh, MsgClass};
use std::collections::{HashMap, VecDeque};

/// A protocol invariant does not hold: abort the simulation with a
/// cycle-stamped reason carrying the violating core/line/transaction.
/// Under `lr-machine` the panic unwinds into the engine loop's catch,
/// which renders the structured failure report (trace window, in-flight
/// transactions, lease tables) with this message as its reason line —
/// never a bare `unwrap()` with no protocol context.
macro_rules! protocol_bug {
    ($now:expr, $($arg:tt)*) => {
        panic!(
            "protocol invariant violated at cycle {}: {}",
            $now,
            format_args!($($arg)*)
        )
    };
}

/// A probe queued at an owning core behind a lease (Section 3: at most one
/// per (core, line) can exist — Proposition 1).
#[derive(Debug, Clone, Copy)]
pub struct PendingProbe {
    /// The transaction whose probe is stalled.
    pub xact: XactId,
    /// When the probe arrived (for queued-cycles accounting).
    pub since: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct Xact {
    token: u64,
    core: CoreId,
    line: LineAddr,
    kind: AccessKind,
    lease_intent: bool,
    regular: bool,
    /// MESI: grant the line in Exclusive (clean) state.
    grant_exclusive: bool,
    enq_time: Cycle,
}

#[derive(Debug, Default)]
struct LineChannel {
    active: Option<XactId>,
    queue: VecDeque<XactId>,
}

/// The directory-based MSI coherence engine for all tiles.
pub struct CoherenceEngine {
    cfg: SystemConfig,
    mesh: Mesh,
    /// Private L1 per core: resident lines and their M/S state.
    l1: Vec<SetAssocCache<L1State>>,
    /// Shared L2 slice per tile: resident lines and their directory entry.
    /// A line's L2 entry is pinned while its channel is active, so the
    /// slice never evicts a line with an in-flight transaction.
    l2: Vec<SetAssocCache<DirState>>,
    /// Per-line FIFO request channels (Assumption 1 of the paper).
    channels: HashMap<LineAddr, LineChannel>,
    /// Slab of retired channel nodes. A line's channel is created on
    /// first directory arrival and dropped once its queue drains, so a
    /// contended line churns through channels continuously; recycling
    /// them keeps each queue's `VecDeque` buffer (the only per-node
    /// heap block) alive across that churn, making the steady-state
    /// directory path allocation-free (audited by `lr-bench`'s
    /// `cell_alloc` counting-allocator test).
    free_channels: Vec<LineChannel>,
    xacts: HashMap<u64, Xact>,
    next_xact: u64,
    /// Probes stalled behind leases, keyed by (owning core, line).
    stalled: HashMap<(CoreId, LineAddr), PendingProbe>,
    stats: MachineStats,
}

fn bit(c: CoreId) -> u64 {
    1u64 << c.idx()
}

fn cores_in(mask: u64) -> impl Iterator<Item = CoreId> {
    (0..64u16).filter(move |i| mask & (1 << i) != 0).map(CoreId)
}

impl CoherenceEngine {
    /// Build the engine for `cfg.num_cores` tiles.
    pub fn new(cfg: &SystemConfig) -> Self {
        assert!(
            cfg.num_cores >= 1 && cfg.num_cores <= 64,
            "sharer bitmasks support up to 64 cores"
        );
        let l1 = (0..cfg.num_cores)
            .map(|_| SetAssocCache::new(cfg.l1_sets(), cfg.l1_ways))
            .collect();
        let l2 = (0..cfg.num_cores)
            .map(|_| SetAssocCache::new(cfg.l2_sets(), cfg.l2_ways))
            .collect();
        CoherenceEngine {
            mesh: Mesh::new(cfg),
            cfg: cfg.clone(),
            l1,
            l2,
            channels: HashMap::new(),
            free_channels: Vec::new(),
            xacts: HashMap::new(),
            next_xact: 0,
            stalled: HashMap::new(),
            stats: MachineStats::new(cfg.num_cores),
        }
    }

    /// Home tile (L2 slice / directory) of a line: stride interleaving.
    #[inline]
    /// Conservative-PDES lookahead of the coherence protocol: the minimum
    /// latency of any cross-tile NoC message. Every event this engine
    /// schedules for a tile other than the one currently executing rides
    /// at least one such message, so a partitioned event loop may run
    /// each partition this many cycles ahead of the others' clocks
    /// without risking a causality violation.
    pub fn noc_min_lookahead(&self) -> Cycle {
        self.mesh.min_cross_latency()
    }

    pub fn home_of(&self, line: LineAddr) -> CoreId {
        CoreId((line.0 % self.cfg.num_cores as u64) as u16)
    }

    /// Protocol statistics collected so far.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Mutable access to the statistics (the machine layer merges its own
    /// per-thread counters in here).
    pub fn stats_mut(&mut self) -> &mut MachineStats {
        &mut self.stats
    }

    /// Current L1 state of `line` at `core` (None = Invalid).
    pub fn l1_state(&self, core: CoreId, line: LineAddr) -> Option<L1State> {
        self.l1[core.idx()].peek(line).copied()
    }

    /// Current directory state of `line` (None = not resident in L2).
    pub fn dir_state(&self, line: LineAddr) -> Option<DirState> {
        self.l2[self.home_of(line).idx()].peek(line).copied()
    }

    /// Pin or unpin `line` in `core`'s L1 (lease layer: leased lines are
    /// pinned so they cannot be picked as eviction victims).
    pub fn pin(&mut self, core: CoreId, line: LineAddr, pinned: bool) -> bool {
        self.l1[core.idx()].set_pinned(line, pinned)
    }

    /// Is a probe currently stalled behind a lease at (core, line)?
    pub fn has_stalled_probe(&self, core: CoreId, line: LineAddr) -> bool {
        self.stalled.contains_key(&(core, line))
    }

    /// Number of in-flight transactions (for quiescence checks).
    pub fn in_flight(&self) -> usize {
        self.xacts.len()
    }

    /// Diagnostic dump of in-flight protocol state (for deadlock reports).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (id, x) in &self.xacts {
            let _ = writeln!(
                s,
                "  xact {id}: core={} line={} kind={:?} lease_intent={}",
                x.core, x.line, x.kind, x.lease_intent
            );
        }
        for ((c, l), p) in &self.stalled {
            let _ = writeln!(
                s,
                "  stalled probe at {c} for {l}: xact {:?} since {}",
                p.xact, p.since
            );
        }
        for (l, ch) in &self.channels {
            let _ = writeln!(
                s,
                "  channel {l}: active={:?} queued={:?}",
                ch.active, ch.queue
            );
        }
        s
    }

    fn msg(&mut self, from: CoreId, to: CoreId, class: MsgClass) -> Cycle {
        match class {
            MsgClass::Control => self.stats.msgs_control += 1,
            MsgClass::Data => self.stats.msgs_data += 1,
        }
        self.stats.flit_hops += self.mesh.flit_hops(from, to, class);
        self.mesh.latency(from, to, class)
    }

    /// Issue a memory access. Returns `Some(completion_time)` on an L1
    /// hit; otherwise the access goes through the protocol and finishes
    /// with a `ctx.xact_completed(token, ..)` callback.
    ///
    /// `lease_intent` marks the access as a lease acquisition: exclusive
    /// ownership triggers `ctx.exclusive_granted`. `regular` marks the
    /// request as a plain (non-lease) access for the §5 prioritization
    /// option.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        now: Cycle,
        token: u64,
        core: CoreId,
        line: LineAddr,
        kind: AccessKind,
        lease_intent: bool,
        regular: bool,
        ctx: &mut dyn CohContext,
    ) -> Option<Cycle> {
        if lease_intent {
            debug_assert!(kind.needs_exclusive(), "leases demand Exclusive state");
        }
        let st = self.l1[core.idx()].touch(line).map(|s| *s);
        let hit = match (st, kind.needs_exclusive()) {
            (Some(s), true) => s.writable(),
            (Some(_), false) => true,
            (None, _) => false,
        };
        if hit {
            if kind.needs_exclusive() && st == Some(L1State::Exclusive) {
                // MESI silent upgrade: E → M without any message.
                *self.l1[core.idx()].peek_mut(line).unwrap() = L1State::Modified;
            }
            self.stats.cores[core.idx()].l1_hits += 1;
            let done = now + self.cfg.l1_latency;
            if lease_intent {
                ctx.exclusive_granted(core, line, done);
            }
            return Some(done);
        }
        self.stats.cores[core.idx()].l1_misses += 1;
        let id = XactId(self.next_xact);
        self.next_xact += 1;
        self.xacts.insert(
            id.0,
            Xact {
                token,
                core,
                line,
                kind,
                lease_intent,
                regular,
                grant_exclusive: false,
                enq_time: 0,
            },
        );
        if ctx.tracing() {
            ctx.trace(
                now,
                TraceEvent::MissIssued {
                    xact: id.0,
                    core,
                    line,
                    kind: if kind.needs_exclusive() {
                        TraceAccess::Exclusive
                    } else {
                        TraceAccess::Load
                    },
                    lease_intent,
                },
            );
        }
        let home = self.home_of(line);
        let lat = self.msg(core, home, MsgClass::Control);
        ctx.schedule(lat, home, CohEvent::DirArrive(id));
        None
    }

    /// Feed a previously scheduled coherence event back into the engine.
    pub fn handle(&mut self, now: Cycle, ev: CohEvent, ctx: &mut dyn CohContext) {
        match ev {
            CohEvent::DirArrive(x) => self.dir_arrive(now, x, ctx),
            CohEvent::ProbeArrive(x) => self.probe_arrive(now, x, ctx),
            CohEvent::GrantArrive(x) => self.grant_arrive(now, x, ctx),
            CohEvent::DirUnlock(line) => self.dir_unlock(now, line, ctx),
        }
    }

    /// The lease on `(core, line)` ended (voluntarily or not): unpin the
    /// line and resume any probe stalled behind the lease.
    pub fn lease_released(
        &mut self,
        now: Cycle,
        core: CoreId,
        line: LineAddr,
        ctx: &mut dyn CohContext,
    ) {
        self.l1[core.idx()].set_pinned(line, false);
        if let Some(p) = self.stalled.remove(&(core, line)) {
            self.stats.cores[core.idx()].probe_queued_cycles += now - p.since;
            if ctx.tracing() {
                ctx.trace(
                    now,
                    TraceEvent::ProbeResumed {
                        owner: core,
                        line,
                        waited: now - p.since,
                    },
                );
            }
            self.owner_downgrade(now, p.xact, core, ctx);
        }
    }

    fn dir_arrive(&mut self, now: Cycle, x: XactId, ctx: &mut dyn CohContext) {
        let line = self.xacts[&x.0].line;
        let pool = &mut self.free_channels;
        let ch = self
            .channels
            .entry(line)
            .or_insert_with(|| pool.pop().unwrap_or_default());
        if ch.active.is_some() {
            ch.queue.push_back(x);
            self.xacts.get_mut(&x.0).unwrap().enq_time = now;
            let qlen = ch.queue.len();
            if qlen > self.stats.max_dir_queue_len {
                self.stats.max_dir_queue_len = qlen;
            }
            if ctx.tracing() {
                ctx.trace(
                    now,
                    TraceEvent::DirQueued {
                        xact: x.0,
                        line,
                        depth: qlen,
                    },
                );
            }
        } else {
            ch.active = Some(x);
            if ctx.tracing() {
                ctx.trace(now, TraceEvent::DirArrive { xact: x.0, line });
            }
            self.service(now, x, ctx);
        }
    }

    fn dir_unlock(&mut self, now: Cycle, line: LineAddr, ctx: &mut dyn CohContext) {
        let home = self.home_of(line);
        self.l2[home.idx()].set_pinned(line, false);
        if ctx.tracing() {
            ctx.trace(now, TraceEvent::DirUnlock { line });
        }
        let Some(ch) = self.channels.get_mut(&line) else {
            protocol_bug!(now, "DirUnlock for {line} but no request channel exists");
        };
        ch.active = None;
        let next = ch.queue.pop_front();
        if next.is_none() {
            if let Some(ch) = self.channels.remove(&line) {
                debug_assert!(ch.active.is_none() && ch.queue.is_empty());
                // Recycle the node: its queue keeps (empty) capacity.
                self.free_channels.push(ch);
            }
        }
        // The previous transaction on `line` is fully settled here, before
        // any queued successor starts mutating state again.
        #[cfg(feature = "strict-invariants")]
        self.check_invariants_at(line);
        if let Some(next) = next {
            self.channels.get_mut(&line).unwrap().active = Some(next);
            let enq = self.xacts[&next.0].enq_time;
            self.stats.dir_queue_wait_cycles += now - enq;
            if ctx.tracing() {
                ctx.trace(now, TraceEvent::DirArrive { xact: next.0, line });
            }
            self.service(now, next, ctx);
        }
    }

    /// Directory services the transaction at the head of the line queue.
    fn service(&mut self, now: Cycle, x: XactId, ctx: &mut dyn CohContext) {
        let Xact {
            core, line, kind, ..
        } = self.xacts[&x.0];
        let home = self.home_of(line);
        self.stats.dir_requests += 1;
        let mut t = now + self.cfg.l2_tag_latency;

        if self.l2[home.idx()].touch(line).is_some() {
            self.stats.l2_hits += 1;
        } else {
            self.stats.l2_misses += 1;
            t += self.cfg.dram_latency;
            self.l2_install(now, home, line, ctx);
        }
        // Keep the line resident while its transaction is in flight.
        self.l2[home.idx()].set_pinned(line, true);

        let dir = *self.l2[home.idx()].peek(line).unwrap();
        match dir {
            DirState::Uncached => self.grant_from_home(now, t, x, ctx),
            DirState::Shared(mask) => {
                if !kind.needs_exclusive() {
                    self.grant_from_home(now, t, x, ctx)
                } else {
                    // Invalidate all other sharers; acks go to the requester.
                    let others = mask & !bit(core);
                    let mut inv_lat = 0;
                    for s in cores_in(others) {
                        let to_s = self.msg(home, s, MsgClass::Control);
                        let ack = self.msg(s, core, MsgClass::Control);
                        inv_lat = inv_lat.max(to_s + ack);
                        self.l1[s.idx()].remove(line);
                        self.stats.invalidations += 1;
                    }
                    let upgrade = mask & bit(core) != 0;
                    let data_lat = if upgrade {
                        // Permission-only grant.
                        self.msg(home, core, MsgClass::Control)
                    } else {
                        self.cfg.l2_data_latency + self.msg(home, core, MsgClass::Data)
                    };
                    *self.l2[home.idx()].peek_mut(line).unwrap() = DirState::Modified(core);
                    ctx.schedule(
                        t - now + data_lat.max(inv_lat),
                        core,
                        CohEvent::GrantArrive(x),
                    );
                }
            }
            DirState::Modified(o) if o == core => {
                // The requester still owns the line (e.g. a redundant
                // upgrade after a race); confirm ownership.
                let lat = self.msg(home, core, MsgClass::Control);
                ctx.schedule(t - now + lat, core, CohEvent::GrantArrive(x));
            }
            DirState::Modified(o) => {
                let lat = self.msg(home, o, MsgClass::Control);
                ctx.schedule(t - now + lat, o, CohEvent::ProbeArrive(x));
            }
        }
    }

    /// Serve data (or permission) straight from the home slice.
    fn grant_from_home(&mut self, now: Cycle, t_ready: Cycle, x: XactId, ctx: &mut dyn CohContext) {
        let Xact {
            core, line, kind, ..
        } = self.xacts[&x.0];
        let home = self.home_of(line);
        let mesi = self.cfg.protocol == lr_sim_core::CoherenceProtocol::Mesi;
        if self.l2[home.idx()].peek(line).is_none() {
            protocol_bug!(
                now,
                "granting {line} to {core} but the line is not resident in its home slice \
                 {home} (L2 pin lost mid-transaction?)"
            );
        }
        let dir = self.l2[home.idx()].peek_mut(line).unwrap();
        *dir = if kind.needs_exclusive() {
            DirState::Modified(core)
        } else {
            match *dir {
                DirState::Shared(mask) => DirState::Shared(mask | bit(core)),
                // MESI: a sole reader of an uncached line gets Exclusive;
                // the directory tracks it like any exclusive owner.
                _ if mesi => {
                    self.xacts.get_mut(&x.0).unwrap().grant_exclusive = true;
                    DirState::Modified(core)
                }
                _ => DirState::Shared(bit(core)),
            }
        };
        let lat = self.cfg.l2_data_latency + self.msg(home, core, MsgClass::Data);
        ctx.schedule(t_ready - now + lat, core, CohEvent::GrantArrive(x));
    }

    fn probe_arrive(&mut self, now: Cycle, x: XactId, ctx: &mut dyn CohContext) {
        let Xact { line, regular, .. } = self.xacts[&x.0];
        let dir = self.dir_state(line);
        match dir {
            Some(DirState::Modified(o)) if self.l1[o.idx()].contains(line) => {
                // A probe is actually delivered to the owner only on this
                // path; the evicted-owner fallback below serves from home
                // without one, so counting in `service` would overcount.
                self.stats.owner_probes += 1;
                self.stats.cores[o.idx()].probes_received += 1;
                if ctx.tracing() {
                    ctx.trace(
                        now,
                        TraceEvent::ProbeArrive {
                            xact: x.0,
                            owner: o,
                            line,
                        },
                    );
                }
                match ctx.probe_action(o, line, regular, now) {
                    ProbeAction::Queue => {
                        self.stats.cores[o.idx()].probes_queued += 1;
                        if ctx.tracing() {
                            ctx.trace(
                                now,
                                TraceEvent::ProbeStalled {
                                    xact: x.0,
                                    owner: o,
                                    line,
                                },
                            );
                        }
                        let prev = self.stalled.insert(
                            (o, line),
                            PendingProbe {
                                xact: x,
                                since: now,
                            },
                        );
                        if let Some(prev) = prev {
                            protocol_bug!(
                                now,
                                "two probes stalled at {o} for {line} (prior xact {:?} since \
                                 cycle {}): violates Proposition 1",
                                prev.xact,
                                prev.since
                            );
                        }
                    }
                    ProbeAction::ProceedBreakingLease => {
                        self.l1[o.idx()].set_pinned(line, false);
                        self.owner_downgrade(now, x, o, ctx);
                    }
                    ProbeAction::Proceed => self.owner_downgrade(now, x, o, ctx),
                }
            }
            _ => {
                // The owner evicted the line (writeback raced the probe):
                // data is back home; serve from there.
                let t = now + self.cfg.l2_tag_latency;
                self.grant_from_home(now, t, x, ctx);
            }
        }
    }

    /// The owning core downgrades/invalidates its copy and forwards data
    /// cache-to-cache to the requester.
    fn owner_downgrade(&mut self, now: Cycle, x: XactId, o: CoreId, ctx: &mut dyn CohContext) {
        let Xact {
            core: req,
            line,
            kind,
            ..
        } = self.xacts[&x.0];
        let home = self.home_of(line);
        let t = now + self.cfg.l1_latency;
        if self.l1[o.idx()].is_pinned(line) {
            protocol_bug!(
                now,
                "downgrading {line} at {o} while it is pinned (leased) — probes must stall \
                 behind a valid lease, never break it silently"
            );
        }
        let Some(&owner_state) = self.l1[o.idx()].peek(line) else {
            protocol_bug!(
                now,
                "downgrading {line} at {o} for xact {x:?}, but the owner holds no copy \
                 (directory/L1 disagree)"
            );
        };
        if kind.needs_exclusive() {
            self.l1[o.idx()].remove(line);
            *self.l2[home.idx()].peek_mut(line).unwrap() = DirState::Modified(req);
        } else {
            *self.l1[o.idx()].peek_mut(line).unwrap() = L1State::Shared;
            *self.l2[home.idx()].peek_mut(line).unwrap() = DirState::Shared(bit(o) | bit(req));
        }
        if owner_state == L1State::Modified {
            // Only dirty copies write back; an Exclusive (clean) copy is
            // downgraded without one (MESI).
            self.stats.cores[o.idx()].l1_writebacks += 1;
        }
        // Off-critical-path directory update / writeback.
        let _ = self.msg(o, home, MsgClass::Control);
        let data = self.msg(o, req, MsgClass::Data);
        ctx.schedule(t - now + data, req, CohEvent::GrantArrive(x));
    }

    fn grant_arrive(&mut self, now: Cycle, x: XactId, ctx: &mut dyn CohContext) {
        let Xact {
            token,
            core,
            line,
            kind,
            lease_intent,
            grant_exclusive,
            ..
        } = match self.xacts.remove(&x.0) {
            Some(x) => x,
            None => protocol_bug!(now, "GrantArrive for unknown transaction {x:?}"),
        };

        if let Some(st) = self.l1[core.idx()].touch(line) {
            // Upgrade path: the S copy is still resident.
            if kind.needs_exclusive() {
                *st = L1State::Modified;
            }
        } else {
            let new_state = if kind.needs_exclusive() {
                L1State::Modified
            } else if grant_exclusive {
                L1State::Exclusive
            } else {
                L1State::Shared
            };
            loop {
                match self.l1[core.idx()].insert(line, new_state) {
                    Inserted::NoVictim => break,
                    Inserted::Evicted(vline, vstate) => {
                        self.evict_l1(now, core, vline, vstate, ctx);
                        break;
                    }
                    Inserted::AllPinned => {
                        let pinned = self.l1[core.idx()].pinned_in_set(line);
                        let Some(victim) = ctx.pinned_victim(core, &pinned, now) else {
                            protocol_bug!(
                                now,
                                "lease layer freed none of {} pinned ways at {core} for a fill \
                                 of {line} (MAX_NUM_LEASES must bound pinned lines per set)",
                                pinned.len()
                            );
                        };
                        if !pinned.contains(&victim) {
                            protocol_bug!(
                                now,
                                "lease layer chose victim {victim} outside the pinned set \
                                 {pinned:?} at {core}"
                            );
                        }
                        // Force-releasing the lease also resumes any
                        // stalled probe on that line.
                        self.lease_released(now, core, victim, ctx);
                    }
                }
            }
        }

        if ctx.tracing() {
            ctx.trace(
                now,
                TraceEvent::GrantArrive {
                    xact: x.0,
                    core,
                    line,
                    exclusive: kind.needs_exclusive() || grant_exclusive,
                },
            );
        }
        // The grant installed the line: its L1 copy and directory entry
        // must agree from here on (the pending DirUnlock does not touch
        // coherence state).
        #[cfg(feature = "strict-invariants")]
        self.check_invariants_at(line);
        let done = now + self.cfg.l1_latency;
        if lease_intent {
            ctx.exclusive_granted(core, line, done);
        }
        let home = self.home_of(line);
        let ack = self.msg(core, home, MsgClass::Control);
        ctx.schedule(ack, home, CohEvent::DirUnlock(line));
        ctx.xact_completed(token, done);
    }

    /// Bookkeeping for an L1 eviction (silent from the thread's view).
    fn evict_l1(
        &mut self,
        now: Cycle,
        core: CoreId,
        vline: LineAddr,
        vstate: L1State,
        ctx: &mut dyn CohContext,
    ) {
        if ctx.tracing() {
            ctx.trace(
                now,
                TraceEvent::L1Evict {
                    core,
                    line: vline,
                    dirty: vstate == L1State::Modified,
                },
            );
        }
        self.stats.cores[core.idx()].l1_evictions += 1;
        let home_v = self.home_of(vline);
        if self.l2[home_v.idx()].peek(vline).is_none() {
            protocol_bug!(
                now,
                "inclusivity violated: {vline} evicted from {core}'s L1 in state {vstate:?} \
                 has no directory entry at its home {home_v}"
            );
        }
        let dir = self.l2[home_v.idx()].peek_mut(vline).unwrap();
        match vstate {
            L1State::Modified => {
                self.stats.cores[core.idx()].l1_writebacks += 1;
                debug_assert_eq!(*dir, DirState::Modified(core));
                *dir = DirState::Uncached;
                let _ = self.msg(core, home_v, MsgClass::Data);
            }
            L1State::Exclusive => {
                // Clean exclusive copy: a control-only PutE.
                debug_assert_eq!(*dir, DirState::Modified(core));
                *dir = DirState::Uncached;
                let _ = self.msg(core, home_v, MsgClass::Control);
            }
            L1State::Shared => {
                if let DirState::Shared(mask) = dir {
                    let m = *mask & !bit(core);
                    *dir = if m == 0 {
                        DirState::Uncached
                    } else {
                        DirState::Shared(m)
                    };
                }
                let _ = self.msg(core, home_v, MsgClass::Control);
            }
        }
    }

    /// Install `line` in its home L2 slice (DRAM fill), back-invalidating
    /// the victim's L1 copies to preserve inclusivity.
    fn l2_install(&mut self, now: Cycle, home: CoreId, line: LineAddr, ctx: &mut dyn CohContext) {
        match self.l2[home.idx()].insert(line, DirState::Uncached) {
            Inserted::NoVictim => {}
            Inserted::Evicted(vline, vdir) => match vdir {
                DirState::Uncached => {}
                DirState::Shared(mask) => {
                    for s in cores_in(mask) {
                        self.l1[s.idx()].remove(vline);
                        let _ = self.msg(home, s, MsgClass::Control);
                        self.stats.invalidations += 1;
                    }
                }
                DirState::Modified(o) => {
                    if let Some(p) = self.stalled.get(&(o, vline)) {
                        protocol_bug!(
                            now,
                            "L2 victim {vline} still has a probe (xact {:?}) stalled at its \
                             owner {o} since cycle {} — the slice evicted a line with an \
                             in-flight transaction",
                            p.xact,
                            p.since
                        );
                    }
                    ctx.line_invalidated(o, vline, now);
                    self.l1[o.idx()].set_pinned(vline, false);
                    self.l1[o.idx()].remove(vline);
                    let _ = self.msg(home, o, MsgClass::Control);
                    let _ = self.msg(o, home, MsgClass::Data);
                    self.stats.invalidations += 1;
                }
            },
            Inserted::AllPinned => {
                protocol_bug!(
                    now,
                    "installing {line} at {home}: every way of its L2 set is pinned by an \
                     active transaction; enlarge L2 or the set associativity"
                )
            }
        }
    }

    /// Protocol invariants narrowed to one line: single-writer,
    /// sharer-mask/L1 agreement, and inclusivity for `line` only.
    ///
    /// Unlike [`CoherenceEngine::check_invariants`], this is safe to run
    /// mid-simulation — but only at points where `line` has no
    /// partially-applied transaction: right after its `GrantArrive`
    /// (copy installed) or at its `DirUnlock` (previous transaction fully
    /// settled, successor not yet serviced). Under the `strict-invariants`
    /// feature the engine calls it at exactly those points, so a protocol
    /// bug fails at the violating event instead of at quiescence
    /// thousands of cycles later.
    pub fn check_invariants_at(&self, line: LineAddr) {
        let dir = self.dir_state(line);
        for (c, l1) in self.l1.iter().enumerate() {
            let c = CoreId(c as u16);
            let Some(&st) = l1.peek(line) else { continue };
            let dir = dir.unwrap_or_else(|| {
                panic!("inclusivity violated at {line}: L1 copy at {c} but no L2 entry")
            });
            match st {
                L1State::Modified | L1State::Exclusive => {
                    assert_eq!(
                        dir,
                        DirState::Modified(c),
                        "dir disagrees with E/M copy at {c} for {line}"
                    );
                    for (o, other) in self.l1.iter().enumerate() {
                        if o != c.idx() {
                            assert!(!other.contains(line), "two copies of modified {line}");
                        }
                    }
                }
                L1State::Shared => match dir {
                    DirState::Shared(mask) => {
                        assert!(mask & bit(c) != 0, "sharer bit missing for {c} {line}")
                    }
                    other => panic!("S copy at {c} for {line} but dir={other:?}"),
                },
            }
        }
        match dir {
            None | Some(DirState::Uncached) => {}
            Some(DirState::Modified(o)) => {
                let st = self.l1[o.idx()].peek(line);
                assert!(
                    matches!(st, Some(L1State::Modified | L1State::Exclusive)),
                    "dir=M({o}) but no E/M copy for {line} (found {st:?})"
                );
            }
            Some(DirState::Shared(mask)) => {
                assert!(mask != 0, "empty sharer mask for {line}");
                for s in cores_in(mask) {
                    assert_eq!(
                        self.l1[s.idx()].peek(line),
                        Some(&L1State::Shared),
                        "dir sharer {s} lacks S copy of {line}"
                    );
                }
            }
        }
    }

    /// Protocol invariants, checked at quiescence (no in-flight
    /// transactions): single-writer, sharer-mask consistency, inclusivity.
    pub fn check_invariants(&self) {
        assert!(self.xacts.is_empty(), "invariant check requires quiescence");
        assert!(self.stalled.is_empty());
        for (c, l1) in self.l1.iter().enumerate() {
            let c = CoreId(c as u16);
            for (line, st) in l1.iter() {
                let dir = self
                    .dir_state(line)
                    .unwrap_or_else(|| panic!("inclusivity violated: {line} at {c} not in L2"));
                match st {
                    L1State::Modified | L1State::Exclusive => {
                        assert_eq!(
                            dir,
                            DirState::Modified(c),
                            "dir disagrees with E/M copy at {c} for {line}"
                        );
                        for (o, other) in self.l1.iter().enumerate() {
                            if o != c.idx() {
                                assert!(!other.contains(line), "two copies of modified {line}");
                            }
                        }
                    }
                    L1State::Shared => match dir {
                        DirState::Shared(mask) => {
                            assert!(mask & bit(c) != 0, "sharer bit missing for {c} {line}")
                        }
                        other => panic!("S copy at {c} for {line} but dir={other:?}"),
                    },
                }
            }
        }
        // Directory entries must be backed by actual copies.
        for l2 in &self.l2 {
            for (line, dir) in l2.iter() {
                match *dir {
                    DirState::Uncached => {}
                    DirState::Modified(o) => {
                        let st = self.l1[o.idx()].peek(line);
                        assert!(
                            matches!(st, Some(L1State::Modified | L1State::Exclusive)),
                            "dir=M({o}) but no E/M copy for {line} (found {st:?})"
                        );
                    }
                    DirState::Shared(mask) => {
                        assert!(mask != 0, "empty sharer mask for {line}");
                        for s in cores_in(mask) {
                            assert_eq!(
                                self.l1[s.idx()].peek(line),
                                Some(&L1State::Shared),
                                "dir sharer {s} lacks S copy of {line}"
                            );
                        }
                    }
                }
            }
        }
    }
}
