//! Engine-level protocol tests, driven by a mock context and a local
//! event loop. The mock's lease behaviour is programmable so the lease
//! queuing path can be exercised without the `lr-lease` crate (which sits
//! above this one).

use crate::*;
use lr_sim_core::{CoreId, Cycle, EventQueue, LineAddr, SystemConfig};
use std::collections::HashMap;
use std::collections::HashSet;

/// Programmable mock of the machine layer. The queue carries each
/// event's delivery tile so `run` can hand it back to the engine the
/// way a real executor would.
struct MockCtx {
    queue: EventQueue<(CoreId, CohEvent)>,
    completions: Vec<(u64, Cycle)>,
    /// Lines the mock claims are leased per core: probes on them queue.
    leased: HashSet<(CoreId, LineAddr)>,
    /// If true, `regular` probes break leases (§5 prioritization).
    prioritize_regular: bool,
    exclusive_grants: Vec<(CoreId, LineAddr, Cycle)>,
    invalidated: Vec<(CoreId, LineAddr)>,
}

impl MockCtx {
    fn new() -> Self {
        MockCtx {
            queue: EventQueue::new(),
            completions: Vec::new(),
            leased: HashSet::new(),
            prioritize_regular: false,
            exclusive_grants: Vec::new(),
            invalidated: Vec::new(),
        }
    }
}

impl CohContext for MockCtx {
    fn schedule(&mut self, delay: Cycle, dest: CoreId, ev: CohEvent) {
        self.queue.push_after(delay, (dest, ev));
    }
    fn xact_completed(&mut self, token: u64, now: Cycle) {
        self.completions.push((token, now));
    }
    fn probe_action(
        &mut self,
        owner: CoreId,
        line: LineAddr,
        regular: bool,
        _now: Cycle,
    ) -> ProbeAction {
        if self.leased.contains(&(owner, line)) {
            if regular && self.prioritize_regular {
                self.leased.remove(&(owner, line));
                ProbeAction::ProceedBreakingLease
            } else {
                ProbeAction::Queue
            }
        } else {
            ProbeAction::Proceed
        }
    }
    fn exclusive_granted(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        self.exclusive_grants.push((core, line, now));
    }
    fn pinned_victim(
        &mut self,
        _core: CoreId,
        pinned: &[LineAddr],
        _now: Cycle,
    ) -> Option<LineAddr> {
        pinned.first().copied()
    }
    fn line_invalidated(&mut self, core: CoreId, line: LineAddr, _now: Cycle) {
        self.invalidated.push((core, line));
    }
}

/// Drain the event queue completely.
fn run(engine: &mut CoherenceEngine, ctx: &mut MockCtx) {
    while let Some((t, (at, ev))) = ctx.queue.pop() {
        engine.handle(t, at, ev, ctx);
    }
}

fn cfg(cores: usize) -> SystemConfig {
    SystemConfig::with_cores(cores)
}

const L: LineAddr = LineAddr(100);

#[test]
fn cold_load_misses_then_hits() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    let c0 = CoreId(0);

    let r = e.access(0, 7, c0, L, AccessKind::Load, false, true, &mut ctx);
    assert!(r.is_none(), "cold access must miss");
    run(&mut e, &mut ctx);
    assert_eq!(ctx.completions.len(), 1);
    assert_eq!(ctx.completions[0].0, 7);
    assert!(ctx.completions[0].1 > 0);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Shared));
    assert_eq!(
        e.dir_state(L),
        Some(DirState::Shared(CoreSet::from_mask(1)))
    );
    assert_eq!(e.stats().l2_misses, 1);

    // Second load: pure L1 hit, completes synchronously.
    let now = ctx.queue.now();
    let r = e.access(now, 7, c0, L, AccessKind::Load, false, true, &mut ctx);
    assert_eq!(r, Some(now + 1));
    run(&mut e, &mut ctx);
    e.check_invariants();
}

#[test]
fn store_grants_modified_and_invalidation_on_second_reader() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));

    assert!(e
        .access(0, 0, c0, L, AccessKind::Store, false, true, &mut ctx)
        .is_none());
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Modified));
    assert_eq!(e.dir_state(L), Some(DirState::Modified(c0)));

    // A load by c1 downgrades c0 to Shared.
    let now = ctx.queue.now();
    assert!(e
        .access(now, 1, c1, L, AccessKind::Load, false, true, &mut ctx)
        .is_none());
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Shared));
    assert_eq!(e.l1_state(c1, L), Some(L1State::Shared));
    assert_eq!(
        e.dir_state(L),
        Some(DirState::Shared(CoreSet::from_mask(0b11)))
    );
    assert_eq!(e.stats().owner_probes, 1);
    e.check_invariants();
}

#[test]
fn upgrade_invalidates_other_sharers() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    let (c0, c1, c2) = (CoreId(0), CoreId(1), CoreId(2));

    for (t, c) in [(0u64, c0), (1, c1), (2, c2)] {
        let now = ctx.queue.now();
        e.access(now, t, c, L, AccessKind::Load, false, true, &mut ctx);
        run(&mut e, &mut ctx);
    }
    assert_eq!(
        e.dir_state(L),
        Some(DirState::Shared(CoreSet::from_mask(0b111)))
    );

    // c1 upgrades: c0 and c2 lose their copies.
    let now = ctx.queue.now();
    e.access(now, 1, c1, L, AccessKind::Rmw, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), None);
    assert_eq!(e.l1_state(c2, L), None);
    assert_eq!(e.l1_state(c1, L), Some(L1State::Modified));
    assert_eq!(e.dir_state(L), Some(DirState::Modified(c1)));
    assert_eq!(e.stats().invalidations, 2);
    e.check_invariants();
}

#[test]
fn per_line_fifo_serializes_contending_stores() {
    let mut e = CoherenceEngine::new(&cfg(8));
    let mut ctx = MockCtx::new();

    // Eight cores store to the same line "simultaneously".
    for c in 0..8u16 {
        e.access(
            0,
            c as u64,
            CoreId(c),
            L,
            AccessKind::Store,
            false,
            true,
            &mut ctx,
        );
    }
    run(&mut e, &mut ctx);
    assert_eq!(ctx.completions.len(), 8);
    // Completions happen in strictly increasing time: the line's FIFO
    // channel serializes ownership transfers.
    let times: Vec<Cycle> = ctx.completions.iter().map(|&(_, t)| t).collect();
    for w in times.windows(2) {
        assert!(w[0] < w[1], "FIFO order violated: {times:?}");
    }
    assert!(e.stats().max_dir_queue_len >= 6);
    assert!(e.stats().dir_queue_wait_cycles > 0);
    e.check_invariants();
}

#[test]
fn leased_line_queues_probe_until_release() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));

    // c0 acquires the line exclusively with lease intent.
    e.access(0, 0, c0, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(ctx.exclusive_grants.len(), 1);
    ctx.leased.insert((c0, L));
    e.pin(c0, L, true);

    // c1 requests the line: the probe must stall at c0.
    let t_req = ctx.queue.now();
    e.access(t_req, 1, c1, L, AccessKind::Store, false, false, &mut ctx);
    run(&mut e, &mut ctx);
    assert!(
        e.has_stalled_probe(c0, L),
        "probe should be queued behind the lease"
    );
    assert_eq!(ctx.completions.len(), 1, "c1 must not complete yet");
    assert_eq!(e.l1_state(c0, L), Some(L1State::Modified));

    // Release after 500 cycles: the probe resumes and c1 completes.
    let t_rel = ctx.queue.now() + 500;
    ctx.queue
        .push_at(t_rel, (CoreId(0), CohEvent::DirUnlock(LineAddr(0xdead)))); // dummy to advance clock
                                                                             // Instead of the dummy event trick, call lease_released directly.
    ctx.queue.pop();
    ctx.leased.remove(&(c0, L));
    e.lease_released(t_rel, c0, L, &mut ctx);
    run(&mut e, &mut ctx);
    assert!(!e.has_stalled_probe(c0, L));
    assert_eq!(ctx.completions.len(), 2);
    let (_, t_done) = ctx.completions[1];
    assert!(t_done >= t_rel, "c1 completes only after the release");
    assert_eq!(e.l1_state(c1, L), Some(L1State::Modified));
    assert_eq!(e.l1_state(c0, L), None);
    let queued: u64 = e.stats().cores.iter().map(|c| c.probes_queued).sum();
    assert_eq!(queued, 1);
    e.check_invariants();
}

#[test]
fn prioritized_regular_request_breaks_lease() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    ctx.prioritize_regular = true;
    let (c0, c1) = (CoreId(0), CoreId(1));

    e.access(0, 0, c0, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    ctx.leased.insert((c0, L));
    e.pin(c0, L, true);

    // Regular store by c1: the lease is broken, no stall.
    let now = ctx.queue.now();
    e.access(now, 1, c1, L, AccessKind::Store, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert!(!e.has_stalled_probe(c0, L));
    assert_eq!(ctx.completions.len(), 2);
    assert_eq!(e.l1_state(c1, L), Some(L1State::Modified));
    e.check_invariants();
}

#[test]
fn lease_tagged_request_still_queues_under_prioritization() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    ctx.prioritize_regular = true;
    let (c0, c1) = (CoreId(0), CoreId(1));

    e.access(0, 0, c0, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    ctx.leased.insert((c0, L));
    e.pin(c0, L, true);

    // c1's request is itself a lease request (regular = false): it queues.
    let now = ctx.queue.now();
    e.access(now, 1, c1, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    assert!(e.has_stalled_probe(c0, L));
    // Clean up: release so invariants hold.
    ctx.leased.remove(&(c0, L));
    e.lease_released(ctx.queue.now(), c0, L, &mut ctx);
    run(&mut e, &mut ctx);
    e.check_invariants();
}

#[test]
fn eviction_writes_back_and_line_can_be_refetched() {
    // Tiny L1: 1 KiB, 1-way => 16 sets; lines 16 apart alias.
    let mut config = cfg(2);
    config.l1_kib = 1;
    config.l1_ways = 1;
    let mut e = CoherenceEngine::new(&config);
    let mut ctx = MockCtx::new();
    let c0 = CoreId(0);
    let a = LineAddr(0);
    let b = LineAddr(16); // same L1 set as `a`

    e.access(0, 0, c0, a, AccessKind::Store, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    let now = ctx.queue.now();
    e.access(now, 0, c0, b, AccessKind::Store, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    // `a` was evicted dirty: directory must say Uncached again.
    assert_eq!(e.l1_state(c0, a), None);
    assert_eq!(e.dir_state(a), Some(DirState::Uncached));
    assert!(e.stats().cores[0].l1_writebacks >= 1);

    // Refetch `a`: L2 hit this time.
    let l2_misses_before = e.stats().l2_misses;
    let now = ctx.queue.now();
    e.access(now, 0, c0, a, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.stats().l2_misses, l2_misses_before);
    assert_eq!(e.l1_state(c0, a), Some(L1State::Shared));
    e.check_invariants();
}

#[test]
fn probe_delay_bounded_by_lease_time() {
    // Proposition 2: with a lease of D cycles, a probe waits at most D
    // beyond normal service. We model the involuntary release by calling
    // lease_released exactly D cycles after the grant.
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));
    let d: Cycle = 1000;

    e.access(0, 0, c0, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    let grant_time = ctx.exclusive_grants[0].2;
    ctx.leased.insert((c0, L));
    e.pin(c0, L, true);

    let t_req = grant_time + 10;
    e.access(t_req, 1, c1, L, AccessKind::Store, false, false, &mut ctx);
    // Drain until the probe stalls.
    run(&mut e, &mut ctx);
    assert!(e.has_stalled_probe(c0, L));

    // Involuntary release at lease expiry.
    let expiry = grant_time + d;
    ctx.leased.remove(&(c0, L));
    e.lease_released(expiry.max(ctx.queue.now()), c0, L, &mut ctx);
    run(&mut e, &mut ctx);
    let (_, t_done) = *ctx.completions.last().unwrap();
    // The request completed within D plus ordinary protocol latencies.
    let slack = 200; // generous bound on protocol message latencies
    assert!(
        t_done <= t_req + d + slack,
        "probe delayed too long: done={t_done} req={t_req}"
    );
    e.check_invariants();
}

#[test]
fn concurrent_distinct_lines_progress_independently() {
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    // Four cores on four distinct lines: no owner probes at all.
    for c in 0..4u16 {
        e.access(
            0,
            c as u64,
            CoreId(c),
            LineAddr(200 + c as u64),
            AccessKind::Store,
            false,
            true,
            &mut ctx,
        );
    }
    run(&mut e, &mut ctx);
    assert_eq!(ctx.completions.len(), 4);
    assert_eq!(e.stats().owner_probes, 0);
    e.check_invariants();
}

#[test]
fn stats_track_messages_and_hops() {
    let mut e = CoherenceEngine::new(&cfg(16));
    let mut ctx = MockCtx::new();
    e.access(
        0,
        0,
        CoreId(15),
        LineAddr(3),
        AccessKind::Load,
        false,
        true,
        &mut ctx,
    );
    run(&mut e, &mut ctx);
    let s = e.stats();
    assert!(s.msgs_control >= 2, "request + ack");
    assert!(s.msgs_data >= 1, "data fill");
    assert!(s.flit_hops > 0);
    assert_eq!(s.dir_requests, 1);
}

#[test]
fn mesi_sole_reader_gets_exclusive_and_upgrades_silently() {
    let mut config = cfg(4);
    config.protocol = lr_sim_core::CoherenceProtocol::Mesi;
    let mut e = CoherenceEngine::new(&config);
    let mut ctx = MockCtx::new();
    let c0 = CoreId(0);

    // Cold load: Exclusive grant.
    e.access(0, 0, c0, L, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Exclusive));
    assert_eq!(e.dir_state(L), Some(DirState::Modified(c0)));

    // Write: silent E→M upgrade, zero messages.
    let msgs_before = e.stats().coherence_messages();
    let now = ctx.queue.now();
    let r = e.access(now, 0, c0, L, AccessKind::Store, false, true, &mut ctx);
    assert!(r.is_some(), "silent upgrade must hit");
    assert_eq!(e.l1_state(c0, L), Some(L1State::Modified));
    assert_eq!(e.stats().coherence_messages(), msgs_before);
    e.check_invariants();
}

#[test]
fn mesi_second_reader_downgrades_exclusive_cleanly() {
    let mut config = cfg(4);
    config.protocol = lr_sim_core::CoherenceProtocol::Mesi;
    let mut e = CoherenceEngine::new(&config);
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));

    e.access(0, 0, c0, L, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Exclusive));

    // Second reader: both end Shared; the clean E copy writes nothing back.
    let now = ctx.queue.now();
    e.access(now, 1, c1, L, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Shared));
    assert_eq!(e.l1_state(c1, L), Some(L1State::Shared));
    assert_eq!(
        e.dir_state(L),
        Some(DirState::Shared(CoreSet::from_mask(0b11)))
    );
    assert_eq!(e.stats().cores[0].l1_writebacks, 0, "E is clean");
    e.check_invariants();
}

#[test]
fn mesi_lease_queues_probe_like_msi() {
    let mut config = cfg(4);
    config.protocol = lr_sim_core::CoherenceProtocol::Mesi;
    let mut e = CoherenceEngine::new(&config);
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));

    e.access(0, 0, c0, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    ctx.leased.insert((c0, L));
    e.pin(c0, L, true);

    let now = ctx.queue.now();
    e.access(now, 1, c1, L, AccessKind::Store, false, false, &mut ctx);
    run(&mut e, &mut ctx);
    assert!(
        e.has_stalled_probe(c0, L),
        "leases must work identically on MESI"
    );

    ctx.leased.remove(&(c0, L));
    e.lease_released(ctx.queue.now(), c0, L, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c1, L), Some(L1State::Modified));
    e.check_invariants();
}

#[test]
fn stats_counters_exact_for_three_core_contention() {
    // Hand-built scenario pinning down the queueing counters:
    //   c0 leases the line (Modified, pinned);
    //   c1 stores -> probe delivered to c0, stalls behind the lease;
    //   c2 stores -> queues at the directory behind c1's transaction;
    //   release  -> c1 completes, then c2 probes c1 and completes.
    let mut e = CoherenceEngine::new(&cfg(4));
    let mut ctx = MockCtx::new();
    let (c0, c1, c2) = (CoreId(0), CoreId(1), CoreId(2));

    e.access(0, 0, c0, L, AccessKind::Rmw, true, false, &mut ctx);
    run(&mut e, &mut ctx);
    ctx.leased.insert((c0, L));
    e.pin(c0, L, true);
    assert_eq!(e.stats().owner_probes, 0);
    assert_eq!(e.stats().max_dir_queue_len, 0);

    // c1: probe delivered and stalled; the directory entry stays locked.
    let t1 = ctx.queue.now();
    e.access(t1, 1, c1, L, AccessKind::Store, false, false, &mut ctx);
    run(&mut e, &mut ctx);
    let t_stalled = ctx.queue.now();
    assert!(e.has_stalled_probe(c0, L));
    assert_eq!(e.stats().owner_probes, 1, "exactly one probe delivered");
    assert_eq!(e.stats().cores[c0.idx()].probes_queued, 1);
    assert_eq!(
        e.stats().cores[c0.idx()].probe_queued_cycles,
        0,
        "stall time accrues only when the probe resumes"
    );

    // c2: the line's directory channel is busy, so it must queue. No
    // probe is delivered for it yet (owner_probes stays 1): counting in
    // `service` would be wrong, the request hasn't reached the owner.
    let t2 = ctx.queue.now();
    e.access(t2, 2, c2, L, AccessKind::Store, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(ctx.completions.len(), 1, "only c0's own access completed");
    assert_eq!(e.stats().max_dir_queue_len, 1, "c2 queued behind c1");
    assert_eq!(e.stats().owner_probes, 1);

    // Release 700 cycles later: c1's stalled probe resumes, c1 takes the
    // line, then c2's queued transaction probes the *new* owner c1.
    let t_rel = ctx.queue.now() + 700;
    // Advance the mock clock to the release time (push/pop a dummy event)
    // so the resumed protocol messages are scheduled relative to t_rel.
    ctx.queue
        .push_at(t_rel, (CoreId(0), CohEvent::DirUnlock(LineAddr(0xdead))));
    ctx.queue.pop();
    ctx.leased.remove(&(c0, L));
    e.lease_released(t_rel, c0, L, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(ctx.completions.len(), 3);
    assert_eq!(e.stats().owner_probes, 2, "c1's probe + c2's probe of c1");
    assert_eq!(e.stats().cores[c0.idx()].probes_queued, 1);
    assert_eq!(e.stats().cores[c1.idx()].probes_queued, 0, "no lease at c1");

    // The stalled probe waited from when it parked at c0 until the
    // release; it parked somewhere in [t1, t_stalled].
    let waited = e.stats().cores[c0.idx()].probe_queued_cycles;
    assert!(
        waited >= t_rel - t_stalled && waited <= t_rel - t1,
        "probe wait {waited} outside [{}, {}]",
        t_rel - t_stalled,
        t_rel - t1
    );
    // c2 arrived at the directory shortly after t2 and was only serviced
    // after the release: it ate (nearly) the whole release delay.
    assert!(
        e.stats().dir_queue_wait_cycles >= 500,
        "dir wait {} too small for a 700-cycle lease hold",
        e.stats().dir_queue_wait_cycles
    );
    assert_eq!(e.l1_state(c2, L), Some(L1State::Modified));
    e.check_invariants();
}

#[test]
fn mesi_store_invalidates_clean_exclusive_without_writeback() {
    // owner_downgrade must not count a writeback for a clean Exclusive
    // copy even on the invalidate (store) path.
    let mut config = cfg(4);
    config.protocol = lr_sim_core::CoherenceProtocol::Mesi;
    let mut e = CoherenceEngine::new(&config);
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));

    e.access(0, 0, c0, L, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), Some(L1State::Exclusive));

    let now = ctx.queue.now();
    e.access(now, 1, c1, L, AccessKind::Store, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, L), None, "E copy invalidated");
    assert_eq!(e.l1_state(c1, L), Some(L1State::Modified));
    assert_eq!(e.dir_state(L), Some(DirState::Modified(c1)));
    assert_eq!(e.stats().cores[0].l1_writebacks, 0, "E is clean");
    assert_eq!(e.stats().owner_probes, 1);
    e.check_invariants();
}

#[test]
fn mesi_clean_exclusive_eviction_frees_line_for_next_exclusive_reader() {
    // Evicting a clean Exclusive copy is a control-only PutE that returns
    // the directory to Uncached, so the *next* sole reader takes the
    // `grant_exclusive` path in grant_from_home again.
    let mut config = cfg(2);
    config.protocol = lr_sim_core::CoherenceProtocol::Mesi;
    config.l1_kib = 1;
    config.l1_ways = 1; // 16 sets; lines 16 apart alias
    let mut e = CoherenceEngine::new(&config);
    let mut ctx = MockCtx::new();
    let (c0, c1) = (CoreId(0), CoreId(1));
    let a = LineAddr(0);
    let b = LineAddr(16);

    e.access(0, 0, c0, a, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, a), Some(L1State::Exclusive));

    // Alias load: `a` is evicted clean (no writeback), dir -> Uncached.
    let now = ctx.queue.now();
    e.access(now, 0, c0, b, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c0, a), None);
    assert_eq!(e.dir_state(a), Some(DirState::Uncached));
    assert_eq!(e.stats().cores[0].l1_writebacks, 0, "clean PutE");

    // A different core loads `a`: sole reader again => Exclusive grant.
    let now = ctx.queue.now();
    e.access(now, 1, c1, a, AccessKind::Load, false, true, &mut ctx);
    run(&mut e, &mut ctx);
    assert_eq!(e.l1_state(c1, a), Some(L1State::Exclusive));
    assert_eq!(e.dir_state(a), Some(DirState::Modified(c1)));
    e.check_invariants();
}

#[test]
fn home_distribution_is_striped() {
    let e = CoherenceEngine::new(&cfg(8));
    let mut homes = HashMap::new();
    for l in 0..64u64 {
        *homes.entry(e.home_of(LineAddr(l))).or_insert(0) += 1;
    }
    assert_eq!(homes.len(), 8);
    for (_, n) in homes {
        assert_eq!(n, 8);
    }
}

#[test]
fn socket_aware_home_map_degenerates_and_localizes() {
    // sockets = 1: exactly the old flat stride interleaving.
    let e = CoherenceEngine::new(&cfg(8));
    for l in (0..4096u64).step_by(37) {
        assert_eq!(e.home_of(LineAddr(l)).idx() as u64, l % 8);
    }
    // sockets = 2, 8 cores: socket picked by the 1 GiB region
    // (line >> 24), slice by stride *within* that socket's tiles.
    let mut c = cfg(8);
    c.sockets = 2;
    let e = CoherenceEngine::new(&c);
    assert_eq!(
        e.home_of(LineAddr(5)),
        CoreId(1),
        "region 0 homes on socket 0"
    );
    assert_eq!(
        e.home_of(LineAddr((1 << 24) | 6)),
        CoreId(4 + 2),
        "region 1 homes on socket 1"
    );
    // Every line still maps to a valid tile, and each socket's regions
    // use only that socket's tiles.
    for l in (0..(3u64 << 24)).step_by((1 << 21) + 13) {
        let h = e.home_of(LineAddr(l));
        assert!(h.idx() < 8);
        assert_eq!(h.idx() / 4, ((l >> 24) % 2) as usize);
    }
}

#[test]
fn cross_socket_access_counts_numa_traffic() {
    let mut c = cfg(4);
    c.sockets = 2;
    let mut e = CoherenceEngine::new(&c);
    let mut ctx = MockCtx::new();
    // Line homed in socket 1's region, accessed from core 0 (socket 0):
    // the request and the grant both cross the inter-socket link.
    let l = LineAddr(1 << 24);
    assert_eq!(e.home_of(l), CoreId(2));
    let r = e.access(0, 1, CoreId(0), l, AccessKind::Load, false, true, &mut ctx);
    assert!(r.is_none());
    run(&mut e, &mut ctx);
    assert_eq!(ctx.completions.len(), 1);
    let st = e.stats();
    assert!(
        st.cross_socket_msgs >= 2,
        "request + grant should cross the link, got {}",
        st.cross_socket_msgs
    );
    assert!(st.socket_flit_hops > 0);
    // The link hops are charged at the (more expensive) inter-socket
    // energy rate on top of the mesh flit energy.
    let base = {
        let mut m = c.energy.clone();
        m.socket_flit_hop_nj = 0.0;
        st.energy_nj(&m)
    };
    assert!(st.energy_nj(&c.energy) > base);

    // The same access on a single-socket machine reports zero NUMA
    // traffic (counters stay all-zero, keeping JSON goldens identical).
    let mut e1 = CoherenceEngine::new(&cfg(4));
    let mut ctx1 = MockCtx::new();
    e1.access(0, 1, CoreId(0), l, AccessKind::Load, false, true, &mut ctx1);
    run(&mut e1, &mut ctx1);
    assert_eq!(e1.stats().cross_socket_msgs, 0);
    assert_eq!(e1.stats().socket_flit_hops, 0);
}
