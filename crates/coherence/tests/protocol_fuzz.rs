//! Protocol fuzzing: random access interleavings (with and without
//! leases) must always terminate, preserve single-writer/sharer-mask
//! invariants at quiescence, and never delay a probe longer than the
//! lease bound (Propositions 1–2). Driven by the in-tree [`SplitMix64`]
//! generator so every case replays from its loop index.

use lr_coherence::*;
use lr_sim_core::{CoreId, Cycle, EventQueue, LineAddr, SplitMix64, SystemConfig};
use std::collections::HashSet;

struct FuzzCtx {
    queue: EventQueue<(CoreId, CohEvent)>,
    completions: Vec<(u64, Cycle)>,
    leased: HashSet<(CoreId, LineAddr)>,
    granted_leases: Vec<(CoreId, LineAddr, Cycle)>,
}

impl CohContext for FuzzCtx {
    fn schedule(&mut self, delay: Cycle, dest: CoreId, ev: CohEvent) {
        self.queue.push_after(delay, (dest, ev));
    }
    fn xact_completed(&mut self, token: u64, now: Cycle) {
        self.completions.push((token, now));
    }
    fn probe_action(
        &mut self,
        owner: CoreId,
        line: LineAddr,
        _regular: bool,
        _now: Cycle,
    ) -> ProbeAction {
        if self.leased.contains(&(owner, line)) {
            ProbeAction::Queue
        } else {
            ProbeAction::Proceed
        }
    }
    fn exclusive_granted(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        self.granted_leases.push((core, line, now));
    }
    fn pinned_victim(
        &mut self,
        _core: CoreId,
        pinned: &[LineAddr],
        _now: Cycle,
    ) -> Option<LineAddr> {
        pinned.first().copied()
    }
    fn line_invalidated(&mut self, core: CoreId, line: LineAddr, _now: Cycle) {
        self.leased.remove(&(core, line));
    }
}

#[derive(Debug, Clone, Copy)]
struct FuzzOp {
    core: u8,
    line: u8,
    kind_sel: u8,
    lease: bool,
}

fn random_op(rng: &mut SplitMix64) -> FuzzOp {
    FuzzOp {
        core: rng.gen_range(0u8..=u8::MAX),
        line: rng.gen_range(0u8..24),
        kind_sel: rng.gen_range(0u8..3),
        lease: rng.gen_bool(0.5),
    }
}

#[test]
fn random_interleavings_preserve_invariants() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xf022_0000 + case);
        let nops = rng.gen_range(1usize..120);
        let ops: Vec<FuzzOp> = (0..nops).map(|_| random_op(&mut rng)).collect();
        let cores = rng.gen_range(2usize..9);
        let mesi = rng.gen_bool(0.5);

        let mut cfg = SystemConfig::with_cores(cores);
        if mesi {
            cfg.protocol = lr_sim_core::CoherenceProtocol::Mesi;
        }
        let max_lease: Cycle = 400;
        let mut engine = CoherenceEngine::new(&cfg);
        let mut ctx = FuzzCtx {
            queue: EventQueue::new(),
            completions: Vec::new(),
            leased: HashSet::new(),
            granted_leases: Vec::new(),
        };
        let mut issued = 0u64;

        for op in ops {
            let core = CoreId((op.core as usize % cores) as u16);
            let line = LineAddr(1000 + op.line as u64);
            let kind = match op.kind_sel {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => AccessKind::Rmw,
            };
            let lease = op.lease && kind.needs_exclusive();
            // Release any lease this core already holds on the line (one
            // outstanding lease per (core, line) in this fuzz).
            let now = ctx.queue.now();
            let held: Vec<(CoreId, LineAddr)> = ctx
                .leased
                .iter()
                .copied()
                .filter(|&(c, _)| c == core)
                .collect();
            for (c, l) in held {
                ctx.leased.remove(&(c, l));
                engine.lease_released(now, c, l, &mut ctx);
            }
            let now = ctx.queue.now();
            if engine
                .access(now, issued, core, line, kind, lease, !lease, &mut ctx)
                .is_some()
            {
                // hit — completion immediate
            }
            issued += 1;
            // Drive to quiescence, arming leases as they are granted and
            // expiring them after max_lease cycles.
            loop {
                for (c, l, _) in ctx.granted_leases.drain(..) {
                    ctx.leased.insert((c, l));
                    engine.pin(c, l, true);
                    // Schedule a forced expiry via a dummy unlock event:
                    // we emulate expiry below instead.
                }
                let Some((t, (at, ev))) = ctx.queue.pop() else {
                    break;
                };
                engine.handle(t, at, ev, &mut ctx);
                // Emulate lease expiry: if a probe stalls, release the
                // lease after the bound.
                let stalled: Vec<(CoreId, LineAddr)> = ctx
                    .leased
                    .iter()
                    .copied()
                    .filter(|&(c, l)| engine.has_stalled_probe(c, l))
                    .collect();
                for (c, l) in stalled {
                    let exp = ctx.queue.now() + max_lease;
                    ctx.leased.remove(&(c, l));
                    engine.lease_released(exp.max(ctx.queue.now()), c, l, &mut ctx);
                }
            }
        }
        // Final cleanup: release all leases and drain.
        let now = ctx.queue.now();
        let all: Vec<(CoreId, LineAddr)> = ctx.leased.drain().collect();
        for (c, l) in all {
            engine.lease_released(now, c, l, &mut ctx);
        }
        while let Some((t, (at, ev))) = ctx.queue.pop() {
            engine.handle(t, at, ev, &mut ctx);
        }
        assert_eq!(engine.in_flight(), 0, "case {case}: transactions leaked");
        assert_eq!(
            ctx.completions.len() as u64 + engine.stats().core_totals().l1_hits,
            issued,
            "case {case}"
        );
        engine.check_invariants();
    }
}
