//! Golden-trace fixture: a checked-in recording of a fixed workload.
//!
//! Two invariants, diffed byte-for-byte in CI:
//!
//! 1. Re-recording the workload today produces *exactly* the fixture
//!    bytes — any drift in the wire format, the lockstep runtime, or
//!    the protocol stack's simulated behaviour shows up here first.
//! 2. The fixture replays cleanly and byte-identically.
//!
//! Regenerate deliberately (after an intentional behaviour change) with
//! `LR_REGEN_GOLDEN=1 cargo test -p lr-replay --test golden`.

use lr_machine::{Machine, SimBarrier, SystemConfig, ThreadCtx, ThreadFn};
use lr_sim_core::tracefmt::{self, MachineTrace, TraceOp};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("golden.lrt")
}

/// Fixed workload covering every recorded op kind: lease/read/CAS/
/// release churn on a shared cell, FAA, exchange, malloc/free, a
/// MultiLease pair, and a barrier (for the marker record).
fn record_golden() -> MachineTrace {
    let mut cfg = SystemConfig::with_cores(2);
    cfg.seed = 0x90_1d_e2;
    let mut machine = Machine::new(cfg);
    let (cell, pair, barrier) = machine.setup(|m| {
        let cell = m.alloc_line_aligned(8);
        let pair = [m.alloc_line_aligned(8), m.alloc_line_aligned(8)];
        let barrier = SimBarrier::init(m, 2);
        (cell, pair, barrier)
    });
    let progs: Vec<ThreadFn> = (0..2)
        .map(|tid| {
            let mut barrier = barrier;
            Box::new(move |ctx: &mut ThreadCtx| {
                for i in 0..12u64 {
                    loop {
                        ctx.lease_max(cell);
                        let v = ctx.read(cell);
                        let ok = ctx.cas(cell, v, v + 1);
                        ctx.release(cell);
                        if ok {
                            break;
                        }
                    }
                    ctx.faa(pair[0], i);
                    ctx.count_op();
                }
                barrier.wait(ctx);
                if ctx.multi_lease(&[pair[0], pair[1]], 400) {
                    let a = ctx.read(pair[0]);
                    ctx.write(pair[1], a + tid as u64);
                    ctx.release_all();
                }
                let scratch = ctx.malloc_line(64);
                ctx.write(scratch, 0xabc);
                ctx.xchg(scratch, 0xdef);
                ctx.free(scratch);
                ctx.count_op();
            }) as ThreadFn
        })
        .collect();
    machine.run_recorded(progs).trace
}

#[test]
fn golden_trace_matches_fixture_byte_for_byte() {
    let trace = record_golden();
    let bytes = tracefmt::encode(&trace);
    let path = fixture_path();
    if std::env::var_os("LR_REGEN_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &bytes).expect("write golden fixture");
        eprintln!("regenerated {} ({} bytes)", path.display(), bytes.len());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with LR_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        bytes, golden,
        "re-recording the golden workload no longer reproduces the fixture — \
         the wire format or simulated behaviour changed; if intentional, \
         regenerate with LR_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_fixture_decodes_replays_and_reencodes() {
    let path = fixture_path();
    let trace = lr_replay::read_trace(&path).unwrap_or_else(|e| {
        panic!(
            "cannot load {} ({e}); regenerate with LR_REGEN_GOLDEN=1",
            path.display()
        )
    });
    // Canonical form: decode → encode is byte-identical.
    let reencoded = tracefmt::encode(&trace);
    assert_eq!(reencoded, std::fs::read(&path).expect("fixture readable"));
    // The fixture contains the barrier marker the workload crossed.
    assert!(
        trace
            .cores
            .iter()
            .flatten()
            .any(|r| matches!(r.op, TraceOp::Barrier)),
        "golden fixture should contain a Barrier marker"
    );
    // And it replays byte-identically.
    let stats = lr_replay::verify(&trace).expect("golden fixture replays byte-identical");
    assert_eq!(stats.app_ops, 2 * 13);
}
