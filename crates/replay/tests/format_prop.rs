//! Property tests for the trace wire format: encode→decode identity
//! over randomized op streams, and corruption detection.

use lr_replay::ReplayOutcome;
use lr_sim_core::tracefmt::{self, MachineTrace, MemImage, OpRecord, TraceOp};
use lr_sim_core::{Addr, SplitMix64, SystemConfig};

fn random_op(rng: &mut SplitMix64) -> TraceOp {
    let a = Addr(0x1000 + 8 * rng.gen_range(0..4096u64));
    match rng.gen_range(0..13u32) {
        0 => TraceOp::Read(a),
        1 => TraceOp::Write(a, rng.next_u64()),
        2 => TraceOp::Cas {
            addr: a,
            expected: rng.next_u64(),
            new: rng.next_u64(),
        },
        3 => TraceOp::Faa {
            addr: a,
            delta: rng.next_u64(),
        },
        4 => TraceOp::Xchg {
            addr: a,
            value: rng.next_u64(),
        },
        5 => TraceOp::Lease {
            addr: a,
            time: rng.gen_range(0..10_000u64),
        },
        6 => TraceOp::Release { addr: a },
        7 => {
            let n = rng.gen_range(1..=8usize);
            TraceOp::MultiLease {
                addrs: (0..n)
                    .map(|_| Addr(0x1000 + 64 * rng.gen_range(0..512u64)))
                    .collect(),
                time: rng.gen_range(0..10_000u64),
            }
        }
        8 => TraceOp::ReleaseAll,
        9 => TraceOp::Malloc {
            size: rng.gen_range(1..4096u64),
            align: 8u64 << rng.gen_range(0..4u32),
        },
        10 => TraceOp::Free(a),
        11 => TraceOp::Barrier,
        _ => TraceOp::Exit {
            instructions: rng.next_u64(),
            ops: rng.gen_range(0..1u64 << 20),
        },
    }
}

fn random_trace(seed: u64) -> MachineTrace {
    let mut rng = SplitMix64::new(seed);
    let ncores = rng.gen_range(1..=8usize);
    let mut cores = Vec::with_capacity(ncores);
    for _ in 0..ncores {
        let nrec = rng.gen_range(0..200usize);
        let mut at = 0u64;
        let mut records = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            at += rng.gen_range(1..1000u64);
            let op = random_op(&mut rng);
            let has_reply = !matches!(op, TraceOp::Exit { .. } | TraceOp::Barrier);
            let reply_time = if has_reply {
                at + rng.gen_range(0..500u64)
            } else {
                at
            };
            records.push(OpRecord {
                at,
                op,
                reply_time,
                reply_value: if has_reply { rng.next_u64() } else { 0 },
                reply_flag: has_reply && rng.gen_bool(0.5),
            });
        }
        cores.push(records);
    }
    let mem = MemImage {
        pages: (0..rng.gen_range(0..6u64))
            .map(|i| {
                let words = rng.gen_range(1..=32usize);
                (i * 3, (0..words).map(|_| rng.next_u64()).collect())
            })
            .collect(),
        brk: 0x1000 + rng.gen_range(0..1u64 << 30),
        live: (0..rng.gen_range(0..10u64))
            .map(|i| (0x1000 + i * 64, 8u64 << rng.gen_range(0..4u32)))
            .collect(),
        free: (0..rng.gen_range(0..4u32))
            .map(|i| {
                (
                    8u64 << i,
                    (0..rng.gen_range(1..=5usize))
                        .map(|_| rng.next_u64())
                        .collect(),
                )
            })
            .collect(),
        live_bytes: rng.gen_range(0..1u64 << 20),
    };
    let mut config = SystemConfig::with_cores(8.max(ncores));
    config.seed = rng.next_u64();
    config.freq_ghz = 0.5 + (rng.gen_range(0..100u64) as f64) / 17.0;
    config.lease.prioritization = rng.gen_bool(0.5);
    MachineTrace {
        config,
        mem,
        cores,
        stats_json: format!("{{\"x\":{}}}", rng.next_u64()),
        live_events: rng.next_u64(),
    }
}

#[test]
fn encode_decode_identity_over_random_streams() {
    for seed in 0..200u64 {
        let t = random_trace(0x5eed_0000 + seed);
        let bytes = tracefmt::encode(&t);
        let back =
            tracefmt::decode(&bytes).unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));
        assert_eq!(back, t, "seed {seed}: roundtrip not identity");
        // Re-encoding the decoded trace is byte-identical (canonical form).
        assert_eq!(tracefmt::encode(&back), bytes, "seed {seed}: not canonical");
    }
}

#[test]
fn random_byte_flips_never_decode_to_a_different_trace() {
    let t = random_trace(0xfeed_face);
    let clean = tracefmt::encode(&t);
    let mut rng = SplitMix64::new(0xbad_c0de);
    for _ in 0..500 {
        let pos = rng.gen_range(0..clean.len());
        let bit = 1u8 << rng.gen_range(0..8u32);
        let mut corrupt = clean.clone();
        corrupt[pos] ^= bit;
        // A rejected decode is fine; a successful one must never
        // silently yield something else.
        if let Ok(back) = tracefmt::decode(&corrupt) {
            assert_eq!(back, t, "flip at {pos} decoded to a different trace");
        }
    }
}

#[test]
fn random_truncations_are_rejected() {
    let t = random_trace(0x77);
    let clean = tracefmt::encode(&t);
    let mut rng = SplitMix64::new(9);
    for _ in 0..100 {
        let cut = rng.gen_range(0..clean.len());
        assert!(
            tracefmt::decode(&clean[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
}

#[test]
fn replay_outcome_is_exported() {
    // Compile-time check that the public surface used by downstream
    // tooling exists; no runtime behaviour.
    fn _takes(_: ReplayOutcome) {}
}
