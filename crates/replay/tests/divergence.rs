//! Divergence-detection coverage: inject a mismatch into every reply
//! field an [`OpRecord`] carries (`reply_time`, `reply_value`,
//! `reply_flag`), into the final stats JSON, and into the engine event
//! count, and require the replayer to (a) catch each one, (b) report
//! the *first* divergent record with its core/offset/cycle/line
//! coordinates, and (c) behave identically under both event-queue
//! stores.
//!
//! [`OpRecord`]: lr_sim_core::tracefmt::OpRecord

use lr_machine::{EventQueueKind, Machine, SystemConfig, ThreadCtx, ThreadFn};
use lr_replay::{replay, verify, verify_with_queue, ReplayOutcome};
use lr_sim_core::tracefmt::{MachineTrace, TraceOp};

/// Record a short contended run: every thread loops lease → read → CAS
/// → release on one shared cell, so the trace carries every reply shape
/// (times, values, and CAS success/failure flags).
fn record(threads: usize, iters: u64) -> MachineTrace {
    let mut machine = Machine::new(SystemConfig::with_cores(threads));
    let cell = machine.setup(|m| m.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = (0..threads)
        .map(|_| {
            Box::new(move |ctx: &mut ThreadCtx| {
                for _ in 0..iters {
                    loop {
                        ctx.lease_max(cell);
                        let v = ctx.read(cell);
                        let ok = ctx.cas(cell, v, v + 1);
                        ctx.release(cell);
                        if ok {
                            break;
                        }
                    }
                    ctx.count_op();
                }
            }) as ThreadFn
        })
        .collect();
    machine.run_recorded(progs).trace
}

/// Offsets (into `trace.cores[core]`) of records that carry an
/// engine-produced reply — everything except the Exit marker and
/// Barrier annotations.
fn reply_offsets(trace: &MachineTrace, core: usize) -> Vec<usize> {
    trace.cores[core]
        .iter()
        .enumerate()
        .filter(|(_, r)| !matches!(r.op, TraceOp::Exit { .. } | TraceOp::Barrier))
        .map(|(i, _)| i)
        .collect()
}

/// Mutate one reply field of one record and require the replayer to
/// diverge exactly there, with full coordinates and both field values
/// in the report.
fn assert_caught(
    mut trace: MachineTrace,
    core: usize,
    offset: usize,
    field: &str,
    mutate: impl FnOnce(&mut lr_sim_core::tracefmt::OpRecord),
) {
    let at = trace.cores[core][offset].at;
    let has_addr = trace.cores[core][offset].op.addr().is_some();
    mutate(&mut trace.cores[core][offset]);
    let ReplayOutcome::Diverged(d) = replay(&trace) else {
        panic!("{field} mutation at core {core} offset {offset} not caught");
    };
    assert_eq!(d.core, core, "{field}: wrong core reported");
    assert_eq!(d.offset, offset, "{field}: wrong offset reported");
    assert_eq!(
        d.cycle, at,
        "{field}: cycle must be the record's issue time"
    );
    assert_eq!(
        d.line.is_some(),
        has_addr,
        "{field}: line coordinate must mirror the op's address"
    );
    assert!(
        d.detail.contains("differs from recording"),
        "{field}: detail must name the mismatch: {}",
        d.detail
    );
    assert!(
        !d.report.is_empty(),
        "{field}: divergence must carry the engine failure report"
    );
}

#[test]
fn reply_time_mutation_is_caught_at_its_record() {
    let trace = record(2, 3);
    let off = reply_offsets(&trace, 1)[2];
    assert_caught(trace, 1, off, "reply_time", |r| r.reply_time += 1);
}

#[test]
fn reply_value_mutation_is_caught_at_its_record() {
    let trace = record(2, 3);
    let off = reply_offsets(&trace, 0)[1];
    assert_caught(trace, 0, off, "reply_value", |r| {
        r.reply_value = r.reply_value.wrapping_add(0xdead)
    });
}

#[test]
fn reply_flag_mutation_is_caught_at_its_record() {
    let trace = record(2, 3);
    // Flip the flag on a CAS specifically: its flag is semantically
    // meaningful (success/failure), the hardest case to sneak past.
    let off = *reply_offsets(&trace, 1)
        .iter()
        .find(|&&i| matches!(trace.cores[1][i].op, TraceOp::Cas { .. }))
        .expect("contended run must record a CAS");
    assert_caught(trace, 1, off, "reply_flag", |r| {
        r.reply_flag = !r.reply_flag
    });
}

/// When several records are tampered with on one core, the replayer
/// reports the *earliest* one — the first-divergence guarantee that
/// makes shrunk reproducers meaningful.
#[test]
fn first_divergence_wins() {
    let mut trace = record(2, 4);
    let offs = reply_offsets(&trace, 0);
    let (k1, k2) = (offs[1], offs[3]);
    assert!(k1 < k2);
    trace.cores[0][k2].reply_value ^= 0xff;
    trace.cores[0][k1].reply_time += 7;
    let ReplayOutcome::Diverged(d) = replay(&trace) else {
        panic!("tampered trace replayed clean");
    };
    assert_eq!(d.core, 0);
    assert_eq!(
        d.offset, k1,
        "must report the first divergent record, not a later one"
    );
}

#[test]
fn stats_json_mutation_fails_verify_with_byte_context() {
    let mut trace = record(2, 2);
    assert!(verify(&trace).is_ok());
    trace.stats_json = trace.stats_json.replacen('0', "1", 1);
    let d = verify(&trace).expect_err("tampered stats JSON must fail");
    assert!(
        d.detail.contains("MachineStats differ"),
        "detail must name the stats mismatch: {}",
        d.detail
    );
    assert!(
        d.detail.contains("first difference at byte"),
        "detail must locate the first differing byte: {}",
        d.detail
    );
}

#[test]
fn live_event_count_mutation_fails_verify() {
    let mut trace = record(2, 2);
    trace.live_events += 1;
    let d = verify(&trace).expect_err("tampered event count must fail");
    assert!(
        d.detail.contains("events"),
        "detail must name the event-count mismatch: {}",
        d.detail
    );
}

/// The heap/wheel event-queue axis: a clean trace verifies under both
/// stores, and a tampered one is caught under both — with identical
/// coordinates.
#[test]
fn both_event_queues_verify_and_both_catch_tampering() {
    let trace = record(2, 3);
    let heap = verify_with_queue(&trace, Some(EventQueueKind::Heap)).expect("heap replay clean");
    let wheel = verify_with_queue(&trace, Some(EventQueueKind::Wheel)).expect("wheel replay clean");
    assert_eq!(heap.to_json(), wheel.to_json());

    let mut bad = trace;
    let off = reply_offsets(&bad, 1)[0];
    bad.cores[1][off].reply_value ^= 1;
    let dh = verify_with_queue(&bad, Some(EventQueueKind::Heap)).expect_err("heap must catch");
    let dw = verify_with_queue(&bad, Some(EventQueueKind::Wheel)).expect_err("wheel must catch");
    assert_eq!(
        (dh.core, dh.offset, dh.cycle),
        (dw.core, dw.offset, dw.cycle)
    );
}
