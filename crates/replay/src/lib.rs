//! # lr-replay
//!
//! Deterministic replay of recorded simulations, engine-only.
//!
//! A live run captures every simulated instruction at the
//! worker⇄engine rendezvous boundary ([`Machine::run_recorded`] or
//! `Machine::with_trace_output`). Because the lockstep runtime's only
//! inputs are
//! each core's issue times and operands — all recorded — feeding the
//! streams back into the engine from a single thread reproduces the
//! *exact* event sequence of the live run: no worker OS threads, no
//! rendezvous handoffs, no parking. [`replay`] does exactly that and
//! [`verify`] additionally requires the reproduced `MachineStats` to be
//! byte-for-byte identical to the recording.
//!
//! The [`ReplaySource`] doubles as a divergence detector: every reply
//! the engine produces is compared against the recorded one, and the
//! first mismatch aborts the run with a structured [`Divergence`] —
//! trace offset, cycle, line address, and the machine's full failure
//! report (protocol-trace window, in-flight state, lease tables).
//! Replay of an unmodified trace on an unmodified engine always
//! matches; a divergence therefore flags either a tampered trace or a
//! behavioural change in the protocol stack, which makes recorded
//! traces compact cross-version regression oracles.

use lr_machine::{
    CommitMode, Cycle, EventQueueKind, LineAddr, Machine, MachineStats, Op, OpSource, Reply,
    Request, SystemConfig,
};
use lr_sim_core::tracefmt::{self, MachineTrace, TraceError, TraceOp};
use lr_sim_mem::SimMemory;
use std::path::{Path, PathBuf};

/// Protocol-trace ring depth for replay runs: enough context around a
/// divergence to see the competing transactions on the affected line.
const REPLAY_TRACE_DEPTH: usize = 64;

/// First point where a replayed run departed from its recording.
#[derive(Debug)]
pub struct Divergence {
    /// Core whose stream diverged.
    pub core: usize,
    /// Index of the diverging record within that core's stream.
    pub offset: usize,
    /// Recorded issue time of the diverging op.
    pub cycle: Cycle,
    /// Cache line the op addresses, if it has one.
    pub line: Option<LineAddr>,
    /// One-line description of the mismatch.
    pub detail: String,
    /// The machine's full failure report at the abort point
    /// (protocol-trace window, in-flight state, lease tables).
    pub report: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay divergence at core {} record {} (cycle {}",
            self.core, self.offset, self.cycle
        )?;
        if let Some(line) = self.line {
            write!(f, ", {line}")?;
        }
        write!(f, "): {}", self.detail)
    }
}

/// Result of [`replay`].
pub enum ReplayOutcome {
    /// The engine reproduced every recorded reply.
    Matched {
        stats: MachineStats,
        /// Final memory image (boxed: a `SimMemory` is page-table-sized).
        mem: Box<SimMemory>,
        /// Discrete events the replayed engine processed.
        events: u64,
    },
    /// The engine departed from the recording (or the run failed).
    Diverged(Box<Divergence>),
}

/// An [`OpSource`] that feeds a recorded trace back into the engine and
/// compares every reply against the recording.
pub struct ReplaySource<'t> {
    trace: &'t MachineTrace,
    /// Per-core position in the record stream; during an op's flight it
    /// points at that op, advancing when its reply is observed.
    cursor: Vec<usize>,
    divergence: Option<Box<Divergence>>,
}

impl<'t> ReplaySource<'t> {
    pub fn new(trace: &'t MachineTrace) -> Self {
        ReplaySource {
            trace,
            cursor: vec![0; trace.cores.len()],
            divergence: None,
        }
    }

    /// The divergence recorded by a failed run, if any.
    pub fn take_divergence(&mut self) -> Option<Box<Divergence>> {
        self.divergence.take()
    }

    fn fail(
        &mut self,
        core: usize,
        offset: usize,
        cycle: Cycle,
        line: Option<LineAddr>,
        detail: String,
    ) -> String {
        self.divergence = Some(Box::new(Divergence {
            core,
            offset,
            cycle,
            line,
            detail: detail.clone(),
            report: String::new(),
        }));
        detail
    }
}

impl OpSource for ReplaySource<'_> {
    fn next(&mut self, tid: usize) -> Result<Request, String> {
        let stream = &self.trace.cores[tid];
        // Barrier records are annotations with no engine-visible op.
        while matches!(
            stream.get(self.cursor[tid]).map(|r| &r.op),
            Some(TraceOp::Barrier)
        ) {
            self.cursor[tid] += 1;
        }
        let offset = self.cursor[tid];
        let Some(rec) = stream.get(offset) else {
            let cycle = stream.last().map_or(0, |r| r.reply_time);
            let detail = format!(
                "core {tid}: trace exhausted after {offset} records but the engine \
                 expects another op (recording ended without Exit?)"
            );
            return Err(self.fail(tid, offset, cycle, None, detail));
        };
        let op = Op::from_trace(&rec.op, rec.at).expect("barriers were skipped above");
        if matches!(rec.op, TraceOp::Exit { .. }) {
            // No reply follows an Exit; consume it now.
            self.cursor[tid] += 1;
        }
        Ok(Request {
            tid,
            at: rec.at,
            op,
        })
    }

    fn observe(&mut self, tid: usize, reply: Reply) -> Result<(), String> {
        let offset = self.cursor[tid];
        let rec = &self.trace.cores[tid][offset];
        if reply.time == rec.reply_time
            && reply.value == rec.reply_value
            && reply.flag == rec.reply_flag
        {
            self.cursor[tid] += 1;
            return Ok(());
        }
        let detail = format!(
            "replayed reply to {:?} differs from recording: \
             got (time {}, value {:#x}, flag {}), recorded (time {}, value {:#x}, flag {})",
            rec.op,
            reply.time,
            reply.value,
            reply.flag,
            rec.reply_time,
            rec.reply_value,
            rec.reply_flag
        );
        let (at, line) = (rec.at, rec.op.addr().map(|a| a.line()));
        Err(self.fail(tid, offset, at, line, detail))
    }
}

/// Execution-engine variant to replay under: the event-queue store,
/// the engine-partition (shard) count, and the commit mode (lockstep
/// global order vs relaxed safe-window batches), `None` = the process
/// defaults. Every variant is required to reproduce a recording
/// byte-for-byte — each axis is an independent A/B oracle over the same
/// trace (the fuzz farm's heap-vs-wheel, shards-1/2/4, and
/// lockstep-vs-relaxed axes).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineVariant {
    pub queue: Option<EventQueueKind>,
    pub shards: Option<usize>,
    pub commit: Option<CommitMode>,
}

impl EngineVariant {
    /// Pin the event-queue store.
    pub fn queue(kind: EventQueueKind) -> Self {
        EngineVariant {
            queue: Some(kind),
            ..Default::default()
        }
    }

    /// Pin the engine-partition count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Pin the executor commit mode.
    pub fn with_commit(mut self, commit: CommitMode) -> Self {
        self.commit = Some(commit);
        self
    }
}

impl std::fmt::Display for EngineVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.queue {
            Some(k) => write!(f, "{k:?}")?,
            None => write!(f, "default")?,
        }
        if let Some(s) = self.shards {
            write!(f, "/shards-{s}")?;
        }
        if let Some(c) = self.commit {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

/// Re-drive a recorded trace through the engine under its recorded
/// configuration, single-threaded. Matches unless the trace was
/// tampered with or the protocol stack's behaviour changed since the
/// recording.
pub fn replay(trace: &MachineTrace) -> ReplayOutcome {
    replay_inner(trace, trace.config.clone(), EngineVariant::default())
}

/// Like [`replay`] but pinned to a specific event-queue store. The two
/// stores are required to produce byte-identical simulations, so a
/// divergence here is an event-queue bug — this is the fuzz farm's
/// heap-vs-wheel axis.
pub fn replay_with_queue(trace: &MachineTrace, queue: EventQueueKind) -> ReplayOutcome {
    replay_inner(trace, trace.config.clone(), EngineVariant::queue(queue))
}

/// Like [`replay`] but pinned to a full engine variant (queue store ×
/// partition count).
pub fn replay_with_variant(trace: &MachineTrace, variant: EngineVariant) -> ReplayOutcome {
    replay_inner(trace, trace.config.clone(), variant)
}

/// Like [`replay`] but under an explicit configuration — deliberately
/// divergent configs (say, a different `dram_latency`) are how the
/// divergence detector itself is exercised.
pub fn replay_with_config(trace: &MachineTrace, cfg: SystemConfig) -> ReplayOutcome {
    replay_inner(trace, cfg, EngineVariant::default())
}

fn replay_inner(trace: &MachineTrace, cfg: SystemConfig, variant: EngineVariant) -> ReplayOutcome {
    if trace.cores.is_empty()
        || cfg.num_cores < 1
        || cfg.num_cores > 64
        || trace.cores.len() > cfg.num_cores
    {
        return ReplayOutcome::Diverged(Box::new(Divergence {
            core: 0,
            offset: 0,
            cycle: 0,
            line: None,
            detail: format!(
                "trace core count {} is incompatible with config num_cores {}",
                trace.cores.len(),
                cfg.num_cores
            ),
            report: String::new(),
        }));
    }
    let mut machine = Machine::new(cfg).with_trace(REPLAY_TRACE_DEPTH);
    if let Some(kind) = variant.queue {
        machine = machine.with_event_queue(kind);
    }
    if let Some(shards) = variant.shards {
        machine = machine.with_engine_shards(shards);
    }
    if let Some(commit) = variant.commit {
        machine = machine.with_commit_mode(commit);
    }
    machine.setup(|m| *m = SimMemory::restore(&trace.mem));
    let mut source = ReplaySource::new(trace);
    match machine.run_source(trace.cores.len(), &mut source) {
        Ok((stats, mem, events)) => ReplayOutcome::Matched {
            stats,
            mem: Box::new(mem),
            events,
        },
        Err(abort) => {
            let mut d = source.take_divergence().unwrap_or_else(|| {
                Box::new(Divergence {
                    core: 0,
                    offset: 0,
                    cycle: 0,
                    line: None,
                    detail: abort.reason.clone(),
                    report: String::new(),
                })
            });
            d.report = abort.report;
            ReplayOutcome::Diverged(d)
        }
    }
}

/// Index and context of the first differing byte between two strings
/// (for stats-JSON mismatch reports).
fn first_diff(a: &str, b: &str) -> String {
    let pos = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let ctx = |s: &str| {
        let start = pos.saturating_sub(20);
        let end = (pos + 20).min(s.len());
        s.get(start..end)
            .unwrap_or("<non-utf8 boundary>")
            .to_string()
    };
    format!(
        "first difference at byte {pos}: replayed …{}… vs recorded …{}…",
        ctx(a),
        ctx(b)
    )
}

/// Replay a trace and require the reproduced run to be byte-for-byte
/// identical to the recording: every per-op reply (checked in flight),
/// the final `MachineStats` JSON, and the engine event count.
pub fn verify(trace: &MachineTrace) -> Result<MachineStats, Box<Divergence>> {
    verify_with_queue(trace, None)
}

/// [`verify`] pinned to an event-queue store (`None` = process default).
pub fn verify_with_queue(
    trace: &MachineTrace,
    queue: Option<EventQueueKind>,
) -> Result<MachineStats, Box<Divergence>> {
    verify_with_variant(
        trace,
        EngineVariant {
            queue,
            ..Default::default()
        },
    )
}

/// [`verify`] pinned to a full engine variant (queue store × shards).
pub fn verify_with_variant(
    trace: &MachineTrace,
    variant: EngineVariant,
) -> Result<MachineStats, Box<Divergence>> {
    let outcome = replay_with_variant(trace, variant);
    match outcome {
        ReplayOutcome::Matched { stats, events, .. } => {
            let json = stats.to_json();
            if json != trace.stats_json {
                return Err(Box::new(Divergence {
                    core: 0,
                    offset: 0,
                    cycle: stats.total_cycles,
                    line: None,
                    detail: format!(
                        "replayed MachineStats differ from recording: {}",
                        first_diff(&json, &trace.stats_json)
                    ),
                    report: String::new(),
                }));
            }
            if events != trace.live_events {
                return Err(Box::new(Divergence {
                    core: 0,
                    offset: 0,
                    cycle: stats.total_cycles,
                    line: None,
                    detail: format!(
                        "replayed engine processed {events} events, recording says {}",
                        trace.live_events
                    ),
                    report: String::new(),
                }));
            }
            Ok(stats)
        }
        ReplayOutcome::Diverged(d) => Err(d),
    }
}

/// Why a trace file could not be loaded.
#[derive(Debug)]
pub enum TraceReadError {
    Io(std::io::Error),
    Format(TraceError),
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "{e}"),
            TraceReadError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

/// Load and decode a trace file.
pub fn read_trace(path: &Path) -> Result<MachineTrace, TraceReadError> {
    let bytes = std::fs::read(path).map_err(TraceReadError::Io)?;
    tracefmt::decode(&bytes).map_err(TraceReadError::Format)
}

/// Encode and write a trace file.
pub fn write_trace(path: &Path, trace: &MachineTrace) -> std::io::Result<()> {
    std::fs::write(path, tracefmt::encode(trace))
}

/// Every `*.lrt` trace file in `dir`, sorted by file name — the
/// canonical iteration order for corpus replays and `--replay DIR`.
pub fn trace_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == tracefmt::TRACE_EXT))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Outcome of a successful [`verify_file`] call.
pub struct VerifiedTrace {
    /// Recorded engine-visible ops in the trace.
    pub ops: u64,
    /// Simulated core count.
    pub cores: usize,
    /// The reproduced (and byte-verified) statistics.
    pub stats: MachineStats,
}

/// Load one trace file and [`verify`] it under the given event-queue
/// store, folding IO, decode, and divergence failures into one
/// printable error — the shared engine behind `lr-bench --replay`,
/// `lr-replay`, and the fuzz farm's corpus gate.
pub fn verify_file(path: &Path, queue: Option<EventQueueKind>) -> Result<VerifiedTrace, String> {
    verify_file_with(
        path,
        EngineVariant {
            queue,
            ..Default::default()
        },
    )
}

/// [`verify_file`] pinned to a full engine variant (queue store ×
/// partition count) — the corpus gate's shard axis.
pub fn verify_file_with(path: &Path, variant: EngineVariant) -> Result<VerifiedTrace, String> {
    let trace = read_trace(path).map_err(|e| e.to_string())?;
    let stats = verify_with_variant(&trace, variant).map_err(|d| d.to_string())?;
    Ok(VerifiedTrace {
        ops: trace.total_ops(),
        cores: trace.cores.len(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_machine::{ThreadCtx, ThreadFn};

    /// A lease-contended counter recording: every lease/CAS/release path
    /// plus allocation, exercised under real inter-core contention.
    fn record_contended(threads: usize, iters: u64) -> MachineTrace {
        let mut machine = Machine::new(SystemConfig::with_cores(threads));
        let cell = machine.setup(|m| m.alloc_line_aligned(8));
        let progs: Vec<ThreadFn> = (0..threads)
            .map(|_| {
                Box::new(move |ctx: &mut ThreadCtx| {
                    for _ in 0..iters {
                        loop {
                            ctx.lease_max(cell);
                            let v = ctx.read(cell);
                            let ok = ctx.cas(cell, v, v + 1);
                            ctx.release(cell);
                            if ok {
                                break;
                            }
                        }
                        ctx.count_op();
                    }
                }) as ThreadFn
            })
            .collect();
        machine.run_recorded(progs).trace
    }

    /// The shard and commit axes of the replay oracle: one recording
    /// must verify byte-for-byte under every (queue store × partition
    /// count × commit mode) engine variant. Replay is engine-only
    /// (Source mode), so lockstep exercises the sharded queue's
    /// sequential merge path and relaxed exercises the safe-window
    /// batch executor.
    #[test]
    fn replay_is_byte_identical_for_every_engine_variant() {
        let trace = record_contended(4, 30);
        for shards in [1usize, 2, 4] {
            for queue in [EventQueueKind::Heap, EventQueueKind::Wheel] {
                for commit in [CommitMode::Lockstep, CommitMode::Relaxed] {
                    let v = EngineVariant::queue(queue)
                        .with_shards(shards)
                        .with_commit(commit);
                    verify_with_variant(&trace, v)
                        .unwrap_or_else(|d| panic!("variant {v} diverged: {d}"));
                }
            }
        }
    }

    #[test]
    fn replay_reproduces_recorded_run_byte_for_byte() {
        let trace = record_contended(3, 40);
        assert!(trace.total_ops() > 0);
        let stats = verify(&trace).expect("replay matches recording");
        assert_eq!(stats.app_ops, 3 * 40);
    }

    #[test]
    fn replay_restores_final_memory() {
        let trace = record_contended(2, 25);
        match replay(&trace) {
            ReplayOutcome::Matched { mem, .. } => {
                // The counter cell is the first line-aligned heap block.
                let cell = trace.mem.live[0].0;
                assert_eq!(mem.read_word(lr_machine::Addr(cell)), 50);
            }
            ReplayOutcome::Diverged(d) => panic!("unexpected divergence: {d}"),
        }
    }

    #[test]
    fn changed_config_is_caught_as_divergence() {
        let trace = record_contended(2, 20);
        let mut cfg = trace.config.clone();
        cfg.dram_latency += 5;
        match replay_with_config(&trace, cfg) {
            ReplayOutcome::Matched { .. } => {
                panic!("replay under a different dram latency cannot match")
            }
            ReplayOutcome::Diverged(d) => {
                assert!(
                    d.detail.contains("differs from recording"),
                    "unexpected detail: {}",
                    d.detail
                );
                assert!(
                    !d.report.is_empty(),
                    "divergence carries the machine report"
                );
            }
        }
    }

    #[test]
    fn tampered_reply_is_caught_with_location() {
        let mut trace = record_contended(2, 10);
        // Flip the recorded flag of core 1's first CAS.
        let (offset, rec) = trace.cores[1]
            .iter_mut()
            .enumerate()
            .find(|(_, r)| matches!(r.op, TraceOp::Cas { .. }))
            .expect("trace contains a CAS");
        rec.reply_flag = !rec.reply_flag;
        let cycle = rec.at;
        let line = rec.op.addr().map(|a| a.line());
        match replay(&trace) {
            ReplayOutcome::Matched { .. } => panic!("tampered trace cannot match"),
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.core, 1);
                assert_eq!(d.offset, offset);
                assert_eq!(d.cycle, cycle);
                assert_eq!(d.line, line);
            }
        }
    }

    #[test]
    fn truncated_stream_is_caught() {
        let mut trace = record_contended(2, 10);
        // Drop core 0's Exit sentinel: the engine will ask for another op.
        trace.cores[0].pop();
        match replay(&trace) {
            ReplayOutcome::Matched { .. } => panic!("truncated trace cannot match"),
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.core, 0);
                assert!(d.detail.contains("exhausted"), "detail: {}", d.detail);
            }
        }
    }

    #[test]
    fn verify_rejects_tampered_stats_json() {
        let mut trace = record_contended(2, 10);
        trace.stats_json = trace.stats_json.replacen('0', "1", 1);
        let err = verify(&trace).expect_err("stats tampering must be caught");
        assert!(
            err.detail.contains("MachineStats"),
            "detail: {}",
            err.detail
        );
    }
}
