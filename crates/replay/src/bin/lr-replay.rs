//! Verify or inspect recorded simulation traces.
//!
//! ```text
//! lr-replay FILE...          replay each trace and require byte-identical stats
//! lr-replay --dump FILE...   print a summary of each trace without replaying
//! ```
//!
//! Exits non-zero if any file fails to decode or verify.

use lr_replay::{read_trace, verify};
use lr_sim_core::tracefmt::config_fingerprint;
use std::path::PathBuf;

const USAGE: &str = "usage: lr-replay [--dump] FILE...\n\
  (no flag)  replay each trace engine-only and require byte-identical MachineStats\n\
  --dump     print a summary of each trace without replaying";

fn main() {
    let mut dump = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--dump" => dump = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let mut failures = 0usize;
    for path in &files {
        let trace = match read_trace(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if dump {
            println!(
                "{}: cores={} ops={} events={} fingerprint={:016x} seed={:#x}",
                path.display(),
                trace.cores.len(),
                trace.total_ops(),
                trace.live_events,
                config_fingerprint(&trace.config),
                trace.config.seed,
            );
            continue;
        }
        match verify(&trace) {
            Ok(stats) => {
                println!(
                    "PASS {}: {} ops over {} cores replayed byte-identical ({} cycles)",
                    path.display(),
                    trace.total_ops(),
                    trace.cores.len(),
                    stats.total_cycles,
                );
            }
            Err(d) => {
                eprintln!("FAIL {}: {d}", path.display());
                if !d.report.is_empty() {
                    eprintln!("{}", d.report);
                }
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} trace(s) failed", files.len());
        std::process::exit(1);
    }
}
