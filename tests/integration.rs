//! Cross-crate integration tests: full-machine runs exercising the whole
//! stack (lease tables → coherence → machine → data structures → apps)
//! through the façade crate, plus determinism and misuse/failure
//! injection from the paper's "Observations and Limitations".

use lease_release::apps::{CounterBench, CounterLockKind, Graph, Pagerank, PagerankVariant};
use lease_release::ds::{MsQueue, QueueVariant, StackVariant, TreiberStack};
use lease_release::machine::{Machine, SystemConfig, ThreadCtx, ThreadFn};
use lease_release::stm::{Tl2, Tl2Variant};

fn cfg(cores: usize) -> SystemConfig {
    SystemConfig::with_cores(cores)
}

/// The paper's headline claim, end to end: under contention, adding
/// leases to the Treiber stack must improve throughput substantially and
/// keep misses/op roughly constant.
#[test]
fn leases_speed_up_contended_stack() {
    let run = |variant: StackVariant| {
        let threads = 8;
        let mut m = Machine::new(cfg(threads));
        let s = m.setup(|mem| TreiberStack::init(mem, variant));
        let progs: Vec<ThreadFn> = (0..threads)
            .map(|_| {
                Box::new(move |ctx: &mut ThreadCtx| {
                    for i in 0..60 {
                        s.push(ctx, i + 1);
                        ctx.count_op();
                        s.pop(ctx);
                        ctx.count_op();
                    }
                }) as ThreadFn
            })
            .collect();
        m.run(progs)
    };
    let base = run(StackVariant::Base);
    let lease = run(StackVariant::Leased);
    let tb = base.throughput_ops_per_sec(1.0);
    let tl = lease.throughput_ops_per_sec(1.0);
    assert!(
        tl > tb * 1.5,
        "lease speedup too small: base {tb:.0} vs lease {tl:.0}"
    );
    assert_eq!(lease.core_totals().cas_failures, 0);
    assert!(lease.misses_per_op() < base.misses_per_op());
}

/// Leases must not hurt the uncontended single-thread case (§7: "In
/// scenarios with no contention, leases do not affect overall throughput
/// in a discernible way").
#[test]
fn leases_do_not_hurt_uncontended() {
    let run = |variant: StackVariant| {
        let mut m = Machine::new(cfg(2));
        let s = m.setup(|mem| TreiberStack::init(mem, variant));
        let progs: Vec<ThreadFn> = vec![Box::new(move |ctx: &mut ThreadCtx| {
            for i in 0..120 {
                s.push(ctx, i + 1);
                ctx.count_op();
                s.pop(ctx);
                ctx.count_op();
            }
        })];
        m.run(progs).throughput_ops_per_sec(1.0)
    };
    let base = run(StackVariant::Base);
    let lease = run(StackVariant::Leased);
    assert!(
        lease > base * 0.85,
        "uncontended lease overhead too large: {base:.0} vs {lease:.0}"
    );
}

/// Same-seed determinism across the full stack.
#[test]
fn full_stack_determinism() {
    let run = || {
        let threads = 6;
        let mut m = Machine::new(cfg(threads));
        let q = m.setup(|mem| MsQueue::init(mem, QueueVariant::Leased));
        let progs: Vec<ThreadFn> = (0..threads)
            .map(|_| {
                Box::new(move |ctx: &mut ThreadCtx| {
                    for _ in 0..40 {
                        let v: u64 = ctx.rng().gen_range(1..1000);
                        q.enqueue(ctx, v);
                        q.dequeue(ctx);
                        ctx.count_op();
                    }
                }) as ThreadFn
            })
            .collect();
        m.run(progs).summary()
    };
    assert_eq!(run(), run());
}

/// Misuse injection (§7 "Observations and Limitations"): a thread that
/// leases the lock line *and keeps the lease while spinning on an owned
/// lock* delays the owner. The run must still terminate (bounded leases)
/// and show involuntary releases.
#[test]
fn misuse_holding_lease_on_owned_lock_still_terminates() {
    let mut config = cfg(3);
    config.lease.max_lease_time = 1_000;
    let mut m = Machine::new(config);
    let (lock, data) = m.setup(|mem| (mem.alloc_line_aligned(8), mem.alloc_line_aligned(8)));
    let mut progs: Vec<ThreadFn> = Vec::new();
    // Thread 0 takes the lock WITHOUT leases (so the bad leasers below
    // can be granted the line while the lock is held — when everyone
    // leases, the implicit FIFO queue hands the line over only at
    // unlocks and the bad pattern is never even exposed).
    progs.push(Box::new(move |ctx: &mut ThreadCtx| {
        for _ in 0..15 {
            while ctx.xchg(lock, 1) != 0 {
                ctx.work(16);
            }
            let v = ctx.read(data);
            ctx.work(400);
            ctx.write(data, v + 1);
            ctx.write(lock, 0);
            ctx.count_op();
        }
    }));
    for _ in 1..3 {
        progs.push(Box::new(move |ctx: &mut ThreadCtx| {
            for _ in 0..15 {
                // BAD pattern: lease, fail to acquire, DO NOT release —
                // the owner's unlock store now stalls until our lease
                // expires.
                loop {
                    ctx.lease(lock, 1_000);
                    if ctx.xchg(lock, 1) == 0 {
                        break;
                    }
                    ctx.work(50); // spin on the leased line
                }
                let v = ctx.read(data);
                ctx.work(400);
                ctx.write(data, v + 1);
                ctx.write(lock, 0);
                ctx.release(lock);
                ctx.count_op();
            }
        }));
    }
    let (stats, mem) = m.run_with_memory(progs);
    assert_eq!(mem.read_word(data), 45, "mutual exclusion broken");
    assert!(
        stats.core_totals().releases_involuntary > 0,
        "the bad pattern must cause involuntary releases"
    );
}

/// Failure injection: a tiny MAX_LEASE_TIME forces involuntary releases
/// mid-critical-pattern; the structures must stay correct (lease usage is
/// advisory — early release never affects safety).
#[test]
fn tiny_lease_time_preserves_correctness() {
    let mut config = cfg(6);
    config.lease.max_lease_time = 60; // expires before most CS finish
    let threads = 6;
    let per = 25u64;
    let mut m = Machine::new(config);
    let bench = m.setup(|mem| CounterBench::init(mem, CounterLockKind::TtsLeased));
    let progs: Vec<ThreadFn> = (0..threads)
        .map(|_| {
            Box::new(move |ctx: &mut ThreadCtx| {
                bench.run_thread(ctx, per);
            }) as ThreadFn
        })
        .collect();
    let (stats, mem) = m.run_with_memory(progs);
    assert_eq!(mem.read_word(bench.counter_addr()), per * threads as u64);
    assert!(stats.core_totals().releases_involuntary > 0);
}

/// False-sharing injection (§7): two hot variables deliberately placed on
/// the SAME cache line, leased by different threads. Forward progress is
/// guaranteed by lease expiry; the final values must still be exact.
#[test]
fn false_sharing_leases_still_make_progress() {
    let mut config = cfg(4);
    config.lease.max_lease_time = 500;
    let mut m = Machine::new(config);
    // One line, two words — intentionally violating the paper's
    // cache-aligned-allocation advice.
    let line = m.setup(|mem| mem.alloc_line_aligned(16));
    let a = line;
    let b = line.offset(8);
    let per = 30u64;
    let progs: Vec<ThreadFn> = (0..4)
        .map(|tid| {
            let target = if tid % 2 == 0 { a } else { b };
            Box::new(move |ctx: &mut ThreadCtx| {
                for _ in 0..per {
                    loop {
                        ctx.lease(target, 400);
                        let v = ctx.read(target);
                        let ok = ctx.cas(target, v, v + 1);
                        ctx.release(target);
                        if ok {
                            break;
                        }
                    }
                }
            }) as ThreadFn
        })
        .collect();
    let (_, mem) = m.run_with_memory(progs);
    assert_eq!(mem.read_word(a), 2 * per);
    assert_eq!(mem.read_word(b), 2 * per);
}

/// TL2 transactions through the façade: money conservation under the
/// hardware MultiLease variant.
#[test]
fn tl2_multilease_conserves_sum() {
    let threads = 6;
    let per = 20u64;
    let mut m = Machine::new(cfg(threads));
    let tl2 = m.setup(|mem| Tl2::init(mem, 10, Tl2Variant::HwMultiLease));
    let tl2_audit = tl2.clone();
    let progs: Vec<ThreadFn> = (0..threads)
        .map(|tid| {
            let tl2 = tl2.clone();
            let tl2_audit = tl2_audit.clone();
            Box::new(move |ctx: &mut ThreadCtx| {
                for _ in 0..per {
                    let i = ctx.rng().gen_range(0..10);
                    let mut j = ctx.rng().gen_range(0..10);
                    while j == i {
                        j = ctx.rng().gen_range(0..10);
                    }
                    tl2.transact_pair(ctx, i, j, 1);
                }
                if tid == 0 {
                    loop {
                        let total: u64 = (0..10).map(|k| tl2_audit.read_committed(ctx, k)).sum();
                        if total == 2 * per * threads as u64 {
                            break;
                        }
                        ctx.work(500);
                    }
                }
            }) as ThreadFn
        })
        .collect();
    m.run(progs);
}

/// Pagerank through the façade: base and leased variants produce the
/// *same* rank vector (the lease changes timing, never results).
#[test]
fn pagerank_lease_is_semantically_transparent() {
    let graph = std::sync::Arc::new(Graph::synthesize(120, 0.25, 9));
    let ranks = |variant: PagerankVariant| {
        let threads = 4;
        let mut m = Machine::new(cfg(threads));
        let pr = m.setup(|mem| Pagerank::init(mem, &graph, threads, variant));
        let pr2 = pr.clone();
        let progs: Vec<ThreadFn> = (0..threads)
            .map(|tid| {
                let pr = pr.clone();
                let graph = graph.clone();
                Box::new(move |ctx: &mut ThreadCtx| {
                    pr.run_thread(ctx, &graph, tid, threads, 3);
                }) as ThreadFn
            })
            .collect();
        let (_, mem) = m.run_with_memory(progs);
        pr2.total_rank(&mem)
    };
    let base = ranks(PagerankVariant::Base);
    let leased = ranks(PagerankVariant::Leased);
    assert_eq!(base, leased, "lease changed the computed ranks");
}

/// Proposition 2 bound, measured end to end: no probe ever waits longer
/// than MAX_LEASE_TIME behind a lease.
#[test]
fn probe_delay_bounded_by_max_lease_time() {
    let mut config = cfg(4);
    config.lease.max_lease_time = 800;
    let mut m = Machine::new(config);
    let a = m.setup(|mem| mem.alloc_line_aligned(8));
    let progs: Vec<ThreadFn> = (0..4)
        .map(|_| {
            Box::new(move |ctx: &mut ThreadCtx| {
                for _ in 0..20 {
                    // Hold each lease to expiry (worst case).
                    ctx.lease(a, 800);
                    ctx.write(a, 1);
                    ctx.work(3_000);
                }
            }) as ThreadFn
        })
        .collect();
    let stats = m.run(progs);
    let t = stats.core_totals();
    assert!(t.probes_queued > 0, "expected queued probes");
    // Average queued delay must respect the bound (with slack for the
    // service latency after release).
    let avg = t.probe_queued_cycles as f64 / t.probes_queued as f64;
    assert!(
        avg <= 800.0 + 200.0,
        "average probe delay {avg} exceeds MAX_LEASE_TIME"
    );
}

/// Cross-runtime determinism regression: golden statistics pinned
/// across scheduler rewrites. The rendezvous scheduler (and any future
/// scheduling change) must reproduce these *exact* numbers — simulated
/// results are a function of the event order alone, never of how
/// worker threads are woken. (Re-captured when the relaxed-commit
/// executor landed: canonical per-tile event keys changed same-cycle
/// tie-breaking, and allocator ops now ride a NoC round trip to the
/// allocator home tile — both *simulated-timing* changes, applied
/// identically by every executor.)
///
/// Pinned against *both* event-queue stores: the timing wheel (the
/// production default) and the `BinaryHeap` baseline must each hit the
/// mpsc-era goldens, proving the wheel preserves the exact
/// `(time, seq)` event order the numbers were captured under.
#[test]
fn scheduler_change_preserves_golden_stats() {
    for kind in [
        lease_release::machine::EventQueueKind::Wheel,
        lease_release::machine::EventQueueKind::Heap,
    ] {
        scheduler_golden_stats_for(kind);
    }
}

fn scheduler_golden_stats_for(kind: lease_release::machine::EventQueueKind) {
    let run = || {
        let threads = 8;
        let mut m = Machine::new(cfg(threads)).with_event_queue(kind);
        let s = m.setup(|mem| TreiberStack::init(mem, StackVariant::Leased));
        let progs: Vec<ThreadFn> = (0..threads)
            .map(|_| {
                Box::new(move |ctx: &mut ThreadCtx| {
                    for i in 0..60 {
                        s.push(ctx, i + 1);
                        ctx.count_op();
                        s.pop(ctx);
                        ctx.count_op();
                    }
                }) as ThreadFn
            })
            .collect();
        m.run(progs)
    };
    let stats = run();
    assert_eq!(stats.total_cycles, 19_829);
    assert_eq!(stats.app_ops, 960);
    assert_eq!(stats.msgs_control, 3_802);
    assert_eq!(stats.msgs_data, 1_191);
    assert_eq!(stats.flit_hops, 24_725);
    assert_eq!(stats.dir_queue_wait_cycles, 34_058);
    assert_eq!(stats.max_dir_queue_len, 7);
    let t = stats.core_totals();
    assert_eq!(t.instructions, 6_240);
    assert_eq!(t.l1_hits, 3_609);
    assert_eq!(t.l1_misses, 1_191);
    assert_eq!(t.l1_writebacks, 710);
    assert_eq!(t.loads, 1_920);
    assert_eq!(t.stores, 960);
    assert_eq!(t.cas_attempts, 960);
    assert_eq!(t.cas_failures, 0);
    assert_eq!(t.mem_stall_cycles, 137_489);
    assert_eq!(t.leases_taken, 960);
    assert_eq!(t.releases_voluntary, 960);
    assert_eq!(t.probes_received, 710);
    assert_eq!(t.probes_queued, 589);
    assert_eq!(t.probe_queued_cycles, 3_971);
    // And the whole document, not just the spot checks, is stable
    // run to run.
    assert_eq!(run().to_json(), run().to_json());
}
